module Json = Conferr_obsv.Json
module Metrics = Conferr_obsv.Metrics
module Scheduler = Conferr_pool.Scheduler
module Executor = Conferr_exec.Executor
module Progress = Conferr_exec.Progress
module Journal = Conferr_exec.Journal
module Policy = Conferr_harden.Policy

type status =
  | Queued
  | Running
  | Done
  | Interrupted
  | Cancelled
  | Failed of string

type campaign = {
  cid : string;
  sut : Suts.Sut.t;
  seed : int;
  policy : Policy.t;
  tenant : Scheduler.tenant;
  journal_path : string;
  base : Conftree.Config_set.t;
  scenarios : Errgen.Scenario.t list;
  total : int;
  mutable cstatus : status;
  mutable done_count : int;  (* finished + resumed scenarios *)
  mutable cancel_requested : bool;
  mutable profile : Conferr.Profile.t option;
  mutable events_rev : string list;  (* newest first *)
  mutable events_n : int;
  mutable closed : bool;  (* terminal event appended *)
}

type t = {
  lock : Mutex.t;
  changed : Condition.t;  (* any event append or status change *)
  sched : Scheduler.t;
  reg : Metrics.t;
  state_dir : string;
  max_campaigns : int;
  segment_bytes : int option;
  journal_io : string -> Conferr_harden.Diskchaos.io option;
  mutable disk_faults : int;  (* campaigns failed by a journal fault *)
  mutable campaigns : campaign list;  (* oldest first *)
  mutable next_id : int;
  mutable draining : bool;
  mutable threads : Thread.t list;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(jobs = 1) ?(max_campaigns = 4) ?segment_bytes
    ?(journal_io = fun _ -> None) ~state_dir () =
  mkdir_p state_dir;
  let reg = Metrics.create () in
  Metrics.declare reg Metrics.Counter "conferr_serve_submissions_total"
    ~help:"Campaign submissions, by result (accepted/rejected/invalid)";
  Metrics.declare reg Metrics.Gauge "conferr_serve_active_campaigns"
    ~help:"Campaigns currently queued or running";
  Metrics.declare reg Metrics.Counter "conferr_serve_requests_total"
    ~help:"HTTP requests served, by route and status";
  Metrics.declare reg Metrics.Counter "conferr_journal_faults_total"
    ~help:"Campaigns aborted by a journal storage fault, by campaign";
  Metrics.declare reg Metrics.Gauge "conferr_serve_disk_faults"
    ~help:"Campaigns failed so far by a journal storage fault";
  {
    lock = Mutex.create ();
    changed = Condition.create ();
    sched = Scheduler.create ~jobs ();
    reg;
    state_dir;
    max_campaigns;
    segment_bytes;
    journal_io;
    disk_faults = 0;
    campaigns = [];
    next_id = 1;
    draining = false;
    threads = [];
  }

let jobs t = Scheduler.jobs t.sched
let registry t = t.reg

let status_of = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Interrupted -> "interrupted"
  | Cancelled -> "cancelled"
  | Failed _ -> "failed"

let status_label c = status_of c.cstatus
let campaign_id c = c.cid

let terminal = function
  | Queued | Running -> false
  | Done | Interrupted | Cancelled | Failed _ -> true

let finished c = terminal c.cstatus

let active_count t =
  List.length (List.filter (fun c -> not (terminal c.cstatus)) t.campaigns)

(* Caller holds the lock. *)
let push_event t c line =
  c.events_rev <- line :: c.events_rev;
  c.events_n <- c.events_n + 1;
  Condition.broadcast t.changed

let campaigns t = locked t (fun () -> t.campaigns)
let find t id = locked t (fun () -> List.find_opt (fun c -> c.cid = id) t.campaigns)

(* ------------------------------------------------------------------ *)
(* Campaign execution                                                  *)
(* ------------------------------------------------------------------ *)

let settings_of t c reg =
  {
    Executor.default_settings with
    campaign_seed = c.seed;
    journal_path = Some c.journal_path;
    segment_bytes = t.segment_bytes;
    journal_io = t.journal_io c.cid;
    timeout_s = c.policy.Policy.timeout_s;
    retries = c.policy.Policy.retries;
    quorum = c.policy.Policy.quorum;
    breaker = c.policy.Policy.breaker;
    fuel = c.policy.Policy.fuel;
    metrics = Some reg;
    tenant = Some c.tenant;
  }

let terminal_event c =
  Json.Obj
    ([
       ("event", Json.Str "campaign");
       ("id", Json.Str c.cid);
       ("status", Json.Str (status_of c.cstatus));
       ("finished", Json.Num (float_of_int c.done_count));
       ("total", Json.Num (float_of_int c.total));
     ]
    @
    match c.cstatus with
    | Failed msg -> [ ("error", Json.Str msg) ]
    | _ -> [])

let run_campaign t c =
  locked t (fun () -> if c.cstatus = Queued then c.cstatus <- Running);
  let on_event ev =
    locked t (fun () ->
        (match ev with
         | Progress.Finished _ -> c.done_count <- c.done_count + 1
         | Progress.Resumed { count } -> c.done_count <- c.done_count + count
         | _ -> ());
        push_event t c (Json.to_string (Progress.event_to_json ev)))
  in
  let result =
    match
      Executor.run_from ~settings:(settings_of t c t.reg) ~on_event ~sut:c.sut
        ~base:c.base ~scenarios:c.scenarios ()
    with
    | profile, _snapshot -> Ok profile
    | exception Journal.Fault msg ->
      (* The campaign's storage is failing, not the service: mark this
         campaign failed, count the fault, leave co-tenants alone. *)
      Metrics.inc t.reg "conferr_journal_faults_total"
        ~labels:[ ("campaign", c.cid) ];
      Error (true, "journal fault: " ^ msg)
    | exception exn -> Error (false, Printexc.to_string exn)
  in
  locked t (fun () ->
      (match result with
       | Ok profile ->
         c.profile <- Some profile;
         let complete = List.length profile.Conferr.Profile.entries >= c.total in
         c.cstatus <-
           (if c.cancel_requested then Cancelled
            else if complete then Done
            else Interrupted)
       | Error (disk, msg) ->
         if disk then begin
           t.disk_faults <- t.disk_faults + 1;
           Metrics.set t.reg "conferr_serve_disk_faults"
             (float_of_int t.disk_faults)
         end;
         c.cstatus <- Failed msg);
      push_event t c (Json.to_string (terminal_event c));
      c.closed <- true;
      Metrics.set t.reg "conferr_serve_active_campaigns"
        (float_of_int (active_count t)))

(* ------------------------------------------------------------------ *)
(* Submission                                                          *)
(* ------------------------------------------------------------------ *)

type submit_error = Bad_request of string | Busy | Unavailable

let int_member name ~default obj =
  match Json.member name obj with
  | None -> Ok default
  | Some v -> (
    match Json.num v with
    | Some f when Float.is_integer f -> Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "%s must be an integer" name))

let submission_count t result =
  Metrics.inc t.reg "conferr_serve_submissions_total"
    ~labels:[ ("result", result) ]

let submit t body =
  let reject kind e = submission_count t kind; Error e in
  match Json.member "sut" body with
  | None -> reject "invalid" (Bad_request "missing required member \"sut\"")
  | Some sut_json -> (
    match Option.bind (Json.str sut_json) Suts.Catalog.find with
    | None ->
      reject "invalid"
        (Bad_request
           (Printf.sprintf "unknown sut (known: %s)"
              (String.concat ", " Suts.Catalog.names)))
    | Some sut -> (
      match int_member "seed" ~default:42 body with
      | Error msg -> reject "invalid" (Bad_request msg)
      | Ok seed -> (
        match Policy.of_json body with
        | Error msg -> reject "invalid" (Bad_request msg)
        | Ok policy -> (
          match Conferr.Engine.parse_default_config sut with
          | Error msg -> reject "invalid" (Bad_request msg)
          | Ok base ->
            let scenarios =
              Conferr.Campaign.typo_scenarios
                ~rng:(Conferr_util.Rng.create seed)
                ~faultload:Conferr.Campaign.paper_faultload sut base
            in
            let outcome =
              locked t (fun () ->
                  if t.draining then Error Unavailable
                  else if active_count t >= t.max_campaigns then Error Busy
                  else begin
                    let cid = Printf.sprintf "c%04d" t.next_id in
                    t.next_id <- t.next_id + 1;
                    let c =
                      {
                        cid;
                        sut;
                        seed;
                        policy;
                        tenant =
                          Scheduler.tenant ~max_active:policy.Policy.jobs_cap
                            ~name:cid t.sched;
                        journal_path =
                          Filename.concat t.state_dir
                            (cid
                            ^
                            if t.segment_bytes = None then ".jsonl"
                            else ".v3");
                        base;
                        scenarios;
                        total = List.length scenarios;
                        cstatus = Queued;
                        done_count = 0;
                        cancel_requested = false;
                        profile = None;
                        events_rev = [];
                        events_n = 0;
                        closed = false;
                      }
                    in
                    t.campaigns <- t.campaigns @ [ c ];
                    t.threads <-
                      Thread.create (fun () -> run_campaign t c) () :: t.threads;
                    Metrics.set t.reg "conferr_serve_active_campaigns"
                      (float_of_int (active_count t));
                    Ok c
                  end)
            in
            (match outcome with
             | Ok _ -> submission_count t "accepted"
             | Error Busy | Error Unavailable -> submission_count t "rejected"
             | Error (Bad_request _) -> submission_count t "invalid");
            outcome))))

let cancel t c =
  let dropped = Scheduler.cancel c.tenant in
  locked t (fun () -> if not (terminal c.cstatus) then c.cancel_requested <- true);
  dropped

let wait t c =
  locked t (fun () ->
      while not c.closed do
        Condition.wait t.changed t.lock
      done)

let drain t =
  locked t (fun () -> t.draining <- true);
  Scheduler.drain t.sched;
  let threads = locked t (fun () -> let ts = t.threads in t.threads <- []; ts) in
  List.iter Thread.join threads

(* ------------------------------------------------------------------ *)
(* JSON views                                                          *)
(* ------------------------------------------------------------------ *)

let summary_json c =
  Json.Obj
    [
      ("id", Json.Str c.cid);
      ("sut", Json.Str c.sut.Suts.Sut.sut_name);
      ("seed", Json.Num (float_of_int c.seed));
      ("status", Json.Str (status_of c.cstatus));
      ("total", Json.Num (float_of_int c.total));
      ("finished", Json.Num (float_of_int c.done_count));
      ("events", Json.Num (float_of_int c.events_n));
      ("policy", Policy.to_json c.policy);
      ("journal", Json.Str c.journal_path);
    ]

let results_json c profile =
  let entries = profile.Conferr.Profile.entries in
  let tally =
    List.fold_left
      (fun acc (e : Conferr.Profile.entry) ->
        let label = Conferr.Outcome.label e.outcome in
        let n = try List.assoc label acc with Not_found -> 0 in
        (label, n + 1) :: List.remove_assoc label acc)
      [] entries
    |> List.sort compare
  in
  Json.Obj
    [
      ("id", Json.Str c.cid);
      ("sut", Json.Str profile.Conferr.Profile.sut_name);
      ("status", Json.Str (status_of c.cstatus));
      ("total", Json.Num (float_of_int c.total));
      ("entries", Json.Num (float_of_int (List.length entries)));
      ( "outcomes",
        Json.Obj (List.map (fun (l, n) -> (l, Json.Num (float_of_int n))) tally)
      );
      ( "scenarios",
        Json.Arr
          (List.map
             (fun (e : Conferr.Profile.entry) ->
               Json.Obj
                 [
                   ("id", Json.Str e.scenario_id);
                   ("class", Json.Str e.class_name);
                   ("outcome", Json.Str (Conferr.Outcome.label e.outcome));
                 ])
             entries) );
    ]

let events_after t c from =
  locked t (fun () ->
      let fresh =
        List.filteri (fun i _ -> i < c.events_n - from) c.events_rev
      in
      (List.rev fresh, c.closed))

(* ------------------------------------------------------------------ *)
(* HTTP surface                                                        *)
(* ------------------------------------------------------------------ *)

let error_json ?(status = 400) ?(headers = []) msg =
  Http.response ~headers ~content_type:"application/json" status
    (Json.to_string (Json.Obj [ ("error", Json.Str msg) ]) ^ "\n")

let dashboard_html t =
  let paths =
    locked t (fun () -> List.map (fun c -> c.journal_path) t.campaigns)
  in
  let rows =
    List.concat_map
      (fun path ->
        if Sys.file_exists path then
          Conferr_exec.Dashboard.rows_of_entries (Journal.load path)
        else [])
      paths
  in
  Conferr_obsv.Report.html ~title:"conferr serve" ~rows
    ~metrics_text:(Metrics.expose t.reg) ()

let stream_events t c ~from write =
  let i = ref from in
  let continue = ref true in
  while !continue do
    let lines, closed = events_after t c !i in
    (match lines with
     | [] ->
       (* nothing new: either finished, or block for the next event *)
       if closed then continue := false
       else
         locked t (fun () ->
             if c.events_n <= !i && not c.closed then
               Condition.wait t.changed t.lock)
     | _ ->
       List.iter (fun line -> write (line ^ "\n")) lines;
       i := !i + List.length lines)
  done

let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

let query_int req name ~default =
  match List.assoc_opt name req.Http.query with
  | None -> default
  | Some v -> ( match int_of_string_opt v with Some n when n >= 0 -> n | _ -> default)

let handle t (req : Http.request) =
  let count route status =
    Metrics.inc t.reg "conferr_serve_requests_total"
      ~labels:[ ("route", route); ("status", string_of_int status) ]
  in
  let respond route resp =
    count route resp.Http.status;
    `Response resp
  in
  let with_campaign route id k =
    match find t id with
    | None -> respond route (error_json ~status:404 "no such campaign")
    | Some c -> k c
  in
  match (req.meth, segments req.path) with
  | "GET", [ "healthz" ] -> respond "healthz" (Http.response 200 "ok\n")
  | "GET", [ "metrics" ] ->
    respond "metrics"
      (Http.response ~content_type:"text/plain; version=0.0.4" 200
         (Metrics.expose t.reg))
  | "GET", [ "dashboard" ] ->
    respond "dashboard"
      (Http.response ~content_type:"text/html; charset=utf-8" 200
         (dashboard_html t))
  | "POST", [ "campaigns" ] -> (
    match Json.of_string (if req.body = "" then "{}" else req.body) with
    | Error msg -> respond "submit" (error_json ("invalid JSON body: " ^ msg))
    | Ok body -> (
      match submit t body with
      | Ok c ->
        respond "submit" (Http.json_response ~status:202 (summary_json c))
      | Error (Bad_request msg) -> respond "submit" (error_json msg)
      | Error Busy ->
        respond "submit"
          (error_json ~status:429
             ~headers:[ ("retry-after", "1") ]
             "daemon at max concurrent campaigns")
      | Error Unavailable ->
        respond "submit" (error_json ~status:503 "daemon is draining")))
  | "GET", [ "campaigns" ] ->
    respond "list"
      (Http.json_response
         (Json.Obj
            [ ("campaigns", Json.Arr (List.map summary_json (campaigns t))) ]))
  | "GET", [ "campaigns"; id ] ->
    with_campaign "status" id (fun c ->
        respond "status" (Http.json_response (summary_json c)))
  | "POST", [ "campaigns"; id; "cancel" ] ->
    with_campaign "cancel" id (fun c ->
        let dropped = cancel t c in
        respond "cancel"
          (Http.json_response
             (Json.Obj
                [
                  ("id", Json.Str c.cid);
                  ("dropped", Json.Num (float_of_int dropped));
                  ("status", Json.Str (status_label c));
                ])))
  | "GET", [ "campaigns"; id; "events" ] ->
    with_campaign "events" id (fun c ->
        let from = query_int req "from" ~default:0 in
        count "events" 200;
        `Stream
          ( [ ("content-type", "application/jsonl") ],
            fun write -> stream_events t c ~from write ))
  | "GET", [ "campaigns"; id; "results" ] ->
    with_campaign "results" id (fun c ->
        match c.profile with
        | Some profile ->
          respond "results" (Http.json_response (results_json c profile))
        | None ->
          respond "results" (error_json ~status:409 "campaign not finished"))
  | "GET", [ "campaigns"; id; "journal" ] ->
    with_campaign "journal" id (fun c ->
        if Sys.file_exists c.journal_path then
          respond "journal" (Http.response 200 (Journal.read_text c.journal_path))
        else respond "journal" (error_json ~status:404 "no journal yet"))
  | _, ([ "healthz" ] | [ "metrics" ] | [ "dashboard" ] | [ "campaigns" ]
       | [ "campaigns"; _ ] | [ "campaigns"; _; ("cancel" | "events" | "results" | "journal") ]) ->
    respond "other" (error_json ~status:405 "method not allowed")
  | _ -> respond "other" (error_json ~status:404 "not found")

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)
(* ------------------------------------------------------------------ *)

let stop_requested = Atomic.make false

let listen t ~port ?port_file ?banner () =
  Atomic.set stop_requested false;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let on_signal _ = Atomic.set stop_requested true in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle on_signal)
      with Invalid_argument _ -> ())
    [ Sys.sigterm; Sys.sigint ];
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 64;
  let bound =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (match port_file with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     output_string oc (string_of_int bound ^ "\n");
     close_out oc);
  Option.iter (fun f -> f bound) banner;
  let conns = ref [] in
  (* accept with a short timeout so a signal is noticed promptly even
     when no connection ever arrives *)
  while not (Atomic.get stop_requested) do
    match Unix.select [ sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept sock with
      | fd, _ ->
        let th =
          Thread.create
            (fun () ->
              Fun.protect
                ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () -> Http.serve_connection (handle t) fd))
            ()
        in
        conns := th :: !conns
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  drain t;
  List.iter (fun th -> try Thread.join th with _ -> ()) !conns
