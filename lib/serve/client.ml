module Json = Conferr_obsv.Json

let with_connection ?(host = "127.0.0.1") ~port f =
  match Unix.inet_addr_of_string host with
  | exception Failure _ -> Error (Printf.sprintf "invalid host %S" host)
  | addr -> (
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect sock (Unix.ADDR_INET (addr, port)) with
        | () -> f sock
        | exception Unix.Unix_error (err, _, _) ->
          Error
            (Printf.sprintf "cannot connect to %s:%d: %s" host port
               (Unix.error_message err))))

let write_all fd s =
  let bytes = Bytes.unsafe_of_string s in
  let n = Bytes.length bytes in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd bytes !written (n - !written)
  done

let send fd ~meth ~path ?body () =
  let body_part =
    match body with
    | None -> "\r\n"
    | Some b ->
      Printf.sprintf
        "content-type: application/json\r\ncontent-length: %d\r\n\r\n%s"
        (String.length b) b
  in
  write_all fd
    (Printf.sprintf "%s %s HTTP/1.1\r\nhost: conferr\r\nconnection: close\r\n%s"
       meth path body_part)

let request ?host ~port ~meth ~path ?body () =
  with_connection ?host ~port (fun sock ->
      send sock ~meth ~path ?body ();
      let r = Http.reader_of_fd sock in
      match Http.parse_response_head r with
      | Error msg -> Error msg
      | Ok (status, headers) -> (
        let buf = Buffer.create 256 in
        match Http.read_body r ~headers ~on_chunk:(Buffer.add_string buf) with
        | Error msg -> Error msg
        | Ok () -> Ok (status, headers, Buffer.contents buf)))

let stream ?host ~port ~path ~on_line () =
  with_connection ?host ~port (fun sock ->
      send sock ~meth:"GET" ~path ();
      let r = Http.reader_of_fd sock in
      match Http.parse_response_head r with
      | Error msg -> Error msg
      | Ok (status, headers) -> (
        (* chunks are arbitrary slices; reassemble lines across them *)
        let carry = Buffer.create 256 in
        let feed data =
          Buffer.add_string carry data;
          let text = Buffer.contents carry in
          Buffer.clear carry;
          let rec split from =
            match String.index_from_opt text from '\n' with
            | None ->
              Buffer.add_substring carry text from (String.length text - from)
            | Some i ->
              on_line (String.sub text from (i - from));
              split (i + 1)
          in
          split 0
        in
        match Http.read_body r ~headers ~on_chunk:feed with
        | Error msg -> Error msg
        | Ok () ->
          if Buffer.length carry > 0 then on_line (Buffer.contents carry);
          Ok status))

let parse_json_response = function
  | Error msg -> Error msg
  | Ok (status, _headers, body) -> (
    match Json.of_string (String.trim body) with
    | Ok json -> Ok (status, json)
    | Error _ -> Ok (status, Json.Str body))

let get_json ?host ~port ~path () =
  parse_json_response (request ?host ~port ~meth:"GET" ~path ())

let post_json ?host ~port ~path body () =
  parse_json_response
    (request ?host ~port ~meth:"POST" ~path ~body:(Json.to_string body) ())
