(** Hand-rolled HTTP/1.1, in the spirit of the hand-rolled [Json]
    (doc/serve.md).

    The daemon needs exactly the subset below — request parsing with
    hard limits, keep-alive and pipelining, fixed-length responses, and
    chunked streaming — and depending on an HTTP stack for that would
    drag in the tree's first networking dependency.  Everything is
    written against a pull {!reader}, so the parser is tested byte-for-
    byte from strings ([test/test_serve.ml]) and run unchanged over
    sockets.

    The parser is {b total}: any malformed input yields [`Error (status,
    reason)] with a 4xx/5xx status — never an exception — which is what
    lets {!serve_connection} guarantee a broken client cannot kill its
    connection handler, let alone the daemon. *)

(** {1 Limits} — inputs beyond these are rejected, not buffered. *)

val max_line_bytes : int
(** Longest accepted request/header/chunk-size line (8 KiB). *)

val max_headers : int
(** Most headers per request (128; beyond → 431). *)

val max_body_bytes : int
(** Largest accepted request body (1 MiB; beyond → 413). *)

(** {1 Readers} *)

type reader

val reader_of_string : string -> reader

val reader_of_fd : Unix.file_descr -> reader
(** Buffered reads; any read error is treated as end of stream. *)

(** {1 Requests} *)

type request = {
  meth : string;                      (** verb, uppercased ([GET], …) *)
  target : string;                    (** raw request target *)
  path : string;                      (** decoded path component *)
  query : (string * string) list;     (** decoded query pairs, in order *)
  version : string;                   (** [HTTP/1.0] or [HTTP/1.1] *)
  headers : (string * string) list;   (** names lowercased, in order *)
  body : string;
}

val header : request -> string -> string option
(** First header with this (lowercase) name. *)

val keep_alive : request -> bool
(** HTTP/1.1 defaults to persistent, [Connection: close] opts out;
    HTTP/1.0 defaults to close, [Connection: keep-alive] opts in. *)

val parse_request :
  reader -> [ `Ok of request | `Eof | `Error of int * string ]
(** Parse one request off the reader, leaving any pipelined follow-up
    bytes buffered for the next call.  [`Eof] is a clean close between
    requests; [`Error] carries the response status to send (400
    malformed, 413/414/431 over limits, 501 transfer-encoding, 505 bad
    version).  Total: never raises. *)

(** {1 Responses} *)

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val response :
  ?headers:(string * string) list -> ?content_type:string -> int -> string ->
  response
(** [response status body]; [content_type] defaults to
    [text/plain; charset=utf-8], the reason phrase to the standard one
    for [status].  [Content-Length] is added at write time. *)

val json_response : ?status:int -> Conferr_obsv.Json.t -> response

val status_reason : int -> string

val write_response :
  Unix.file_descr -> keep_alive:bool -> response -> unit
(** Serialize and send; raises [Unix.Unix_error] on a dead peer (the
    connection loop catches it). *)

(** {1 Connection loop} *)

type handler =
  request ->
  [ `Response of response
  | `Stream of (string * string) list * ((string -> unit) -> unit) ]
(** [`Stream (headers, produce)] sends a chunked response: [produce]
    is handed a [write] function and each call becomes one chunk; the
    stream (and connection) closes when [produce] returns. *)

val serve_connection : handler -> Unix.file_descr -> unit
(** Run the keep-alive loop on one accepted socket until the peer
    closes, a parse error is answered, or a stream completes.  Handler
    exceptions become a 500; socket errors close quietly.  Never
    raises, never exits the process. *)

(** {1 Client-side helpers} *)

val parse_response_head :
  reader -> (int * (string * string) list, string) result
(** Status line + headers (names lowercased) of a response. *)

val read_body :
  reader -> headers:(string * string) list ->
  on_chunk:(string -> unit) -> (unit, string) result
(** Read a response body: by [Content-Length], chunked
    ([Transfer-Encoding: chunked]), or until EOF when neither is
    present.  Data is delivered incrementally through [on_chunk]. *)
