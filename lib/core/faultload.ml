let journal_scenarios ~seed sut base =
  let typo =
    Campaign.typo_scenarios
      ~rng:(Conferr_util.Rng.create seed)
      ~faultload:Campaign.paper_faultload sut base
  in
  let semantic =
    let relabel codec =
      Dnsmodel.Rfc1912.scenarios ~codec ~faults:Dnsmodel.Rfc1912.all_faults base
      |> Errgen.Scenario.relabel_ids ~prefix:"semantic"
    in
    match sut.Suts.Sut.sut_name with
    | "bind" -> relabel (Dnsmodel.Codec.bind ~zones:Suts.Mini_bind.zones)
    | "djbdns" -> relabel (Dnsmodel.Codec.tinydns ~file:Suts.Mini_djbdns.data_file)
    | _ -> []
  in
  typo @ semantic
