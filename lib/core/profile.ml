module Texttable = Conferr_util.Texttable
module Strutil = Conferr_util.Strutil

type entry = {
  scenario_id : string;
  class_name : string;
  description : string;
  outcome : Outcome.t;
}

type t = { sut_name : string; entries : entry list }

type summary = {
  total : int;
  startup : int;
  functional : int;
  ignored : int;
  not_applicable : int;
  crashed : int;
}

let make ~sut_name entries = { sut_name; entries }

let summarize_entries entries =
  let count pred = List.length (List.filter pred entries) in
  let startup =
    count (fun e -> match e.outcome with Outcome.Startup_failure _ -> true | _ -> false)
  in
  let functional =
    count (fun e -> match e.outcome with Outcome.Test_failure _ -> true | _ -> false)
  in
  let ignored = count (fun e -> e.outcome = Outcome.Passed) in
  let not_applicable =
    count (fun e -> match e.outcome with Outcome.Not_applicable _ -> true | _ -> false)
  in
  let crashed =
    count (fun e -> match e.outcome with Outcome.Crashed _ -> true | _ -> false)
  in
  {
    total = startup + functional + ignored + crashed;
    startup;
    functional;
    ignored;
    not_applicable;
    crashed;
  }

let summarize t = summarize_entries t.entries

let summarize_class t prefix =
  summarize_entries
    (List.filter (fun e -> Strutil.is_prefix ~prefix e.class_name) t.entries)

let class_names t =
  List.fold_left
    (fun acc e -> if List.mem e.class_name acc then acc else e.class_name :: acc)
    [] t.entries
  |> List.rev

let filter pred t = { t with entries = List.filter pred t.entries }

let detection_rate s =
  if s.total = 0 then 0.
  else float_of_int (s.startup + s.functional + s.crashed) /. float_of_int s.total

(* The "crashed" column only appears when at least one entry crashed, so
   profiles of campaigns without harness-level crashes (every run before
   chaos/sandboxing existed) render byte-identically to older versions. *)
let render t =
  let with_crashed = (summarize t).crashed > 0 in
  let row name s =
    [ name; string_of_int s.total;
      Texttable.percentage ~count:s.startup ~total:s.total;
      Texttable.percentage ~count:s.functional ~total:s.total ]
    @ (if with_crashed then
         [ Texttable.percentage ~count:s.crashed ~total:s.total ]
       else [])
    @ [
        Texttable.percentage ~count:s.ignored ~total:s.total;
        string_of_int s.not_applicable;
      ]
  in
  let class_rows =
    List.map (fun c -> row c (summarize_class t c)) (class_names t)
  in
  let total_row = row "TOTAL" (summarize t) in
  let header =
    [ "fault class"; "applicable"; "startup"; "functional" ]
    @ (if with_crashed then [ "crashed" ] else [])
    @ [ "ignored"; "n/a" ]
  in
  let aligns =
    Texttable.Left :: List.map (fun _ -> Texttable.Right) (List.tl header)
  in
  Printf.sprintf "Resilience profile for %s\n%s" t.sut_name
    (Texttable.render ~aligns ~header (class_rows @ [ total_row ]))

let render_by_cognitive_level t =
  let levels =
    [ Errgen.Cognitive.Skill_based; Errgen.Cognitive.Rule_based;
      Errgen.Cognitive.Knowledge_based ]
  in
  let entries_of level =
    List.filter
      (fun e -> Errgen.Cognitive.of_class_name e.class_name = level)
      t.entries
  in
  let with_crashed = (summarize t).crashed > 0 in
  let row label entries =
    let s = summarize_entries entries in
    [
      label;
      string_of_int s.total;
      Texttable.percentage ~count:s.startup ~total:s.total;
      Texttable.percentage ~count:s.functional ~total:s.total;
    ]
    @ (if with_crashed then
         [ Texttable.percentage ~count:s.crashed ~total:s.total ]
       else [])
    @ [ Texttable.percentage ~count:s.ignored ~total:s.total ]
  in
  let level_rows =
    List.map
      (fun level -> row (Errgen.Cognitive.name level) (entries_of (Some level)))
      levels
  in
  let unclassified = entries_of None in
  let rows =
    level_rows @ (if unclassified = [] then [] else [ row "unclassified" unclassified ])
  in
  let header =
    [ "cognitive level"; "applicable"; "startup"; "functional" ]
    @ (if with_crashed then [ "crashed" ] else [])
    @ [ "ignored" ]
  in
  let aligns =
    Texttable.Left :: List.map (fun _ -> Texttable.Right) (List.tl header)
  in
  Printf.sprintf "Outcomes by GEMS cognitive level for %s\n%s" t.sut_name
    (Texttable.render ~aligns ~header rows)

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\""
    ^ String.concat "\"\"" (String.split_on_char '"' s)
    ^ "\""
  else s

let to_csv t =
  let line e =
    String.concat ","
      (List.map csv_field
         [ e.scenario_id; Outcome.label e.outcome; e.class_name; e.description ])
  in
  String.concat "\n"
    (("scenario_id,outcome,class,description" :: List.map line t.entries) @ [ "" ])

let render_entries ?(only_detected = false) t =
  let entries =
    if only_detected then List.filter (fun e -> Outcome.detected e.outcome) t.entries
    else t.entries
  in
  let row e =
    [ e.scenario_id; Outcome.label e.outcome; e.class_name; e.description ]
  in
  Texttable.render ~header:[ "id"; "outcome"; "class"; "description" ]
    (List.map row entries)
