type crash_phase = Boot | Test | Harness

type crash_cause =
  | Uncaught of string
  | Stack_overflow_crash
  | Out_of_memory_crash
  | Fuel_exhausted of int
  | Timeout of float
  | Breaker_open of string

type crash = { cause : crash_cause; phase : crash_phase; backtrace : string }

type t =
  | Startup_failure of string
  | Test_failure of string list
  | Passed
  | Not_applicable of string
  | Crashed of crash

let detected = function
  | Startup_failure _ | Test_failure _ | Crashed _ -> true
  | Passed | Not_applicable _ -> false

let label = function
  | Startup_failure _ -> "startup"
  | Test_failure _ -> "functional"
  | Passed -> "ignored"
  | Not_applicable _ -> "n/a"
  | Crashed _ -> "crashed"

let phase_label = function Boot -> "boot" | Test -> "test" | Harness -> "harness"

let phase_of_label = function
  | "boot" -> Some Boot
  | "test" -> Some Test
  | "harness" -> Some Harness
  | _ -> None

(* Machine-readable cause codes, used by the journal; [cause_of_string]
   is the exact inverse for every value [cause_to_string] emits. *)
let cause_to_string = function
  | Uncaught msg -> "exn:" ^ msg
  | Stack_overflow_crash -> "stack-overflow"
  | Out_of_memory_crash -> "out-of-memory"
  | Fuel_exhausted budget -> Printf.sprintf "fuel:%d" budget
  | Timeout s -> Printf.sprintf "timeout:%h" s
  | Breaker_open bucket -> "breaker:" ^ bucket

let after_prefix ~prefix s =
  let plen = String.length prefix in
  if String.length s >= plen && String.sub s 0 plen = prefix then
    Some (String.sub s plen (String.length s - plen))
  else None

let cause_of_string s =
  match s with
  | "stack-overflow" -> Some Stack_overflow_crash
  | "out-of-memory" -> Some Out_of_memory_crash
  | _ ->
    (match after_prefix ~prefix:"exn:" s with
     | Some msg -> Some (Uncaught msg)
     | None ->
       (match after_prefix ~prefix:"fuel:" s with
        | Some n -> Option.map (fun n -> Fuel_exhausted n) (int_of_string_opt n)
        | None ->
          (match after_prefix ~prefix:"timeout:" s with
           | Some f -> Option.map (fun f -> Timeout f) (float_of_string_opt f)
           | None ->
             Option.map
               (fun b -> Breaker_open b)
               (after_prefix ~prefix:"breaker:" s))))

let cause_summary = function
  | Uncaught msg -> Printf.sprintf "uncaught exception: %s" msg
  | Stack_overflow_crash -> "stack overflow"
  | Out_of_memory_crash -> "out of memory"
  | Fuel_exhausted budget -> Printf.sprintf "fuel budget of %d steps exhausted" budget
  | Timeout s -> Printf.sprintf "timed out after %gs" s
  | Breaker_open bucket ->
    Printf.sprintf "skipped: circuit breaker open for %s" bucket

let crash_summary c =
  Printf.sprintf "%s [%s]" (cause_summary c.cause) (phase_label c.phase)

let pp fmt = function
  | Startup_failure msg -> Format.fprintf fmt "startup failure: %s" msg
  | Test_failure msgs ->
    Format.fprintf fmt "functional-test failure: %s" (String.concat "; " msgs)
  | Passed -> Format.pp_print_string fmt "passed (mutation ignored or handled)"
  | Not_applicable msg -> Format.fprintf fmt "not applicable: %s" msg
  | Crashed c -> Format.fprintf fmt "crashed: %s" (crash_summary c)
