(** Classification of one error-injection experiment (paper §3.1).

    Three outcomes are possible once a faulty configuration reaches the
    SUT, plus one for scenarios whose mutation cannot be applied or
    serialized into the native format at all (paper §3.2: "differences in
    the expressiveness of the two representations can prevent this
    operation from completing successfully"), plus one for scenarios
    that took the harness itself down — a SUT that raised through the
    sandbox, overran its deadline or fuel budget, or was skipped by a
    tripped circuit breaker (doc/harden.md). *)

type crash_phase =
  | Boot     (** the SUT crashed while parsing/starting on the faulty files *)
  | Test     (** the SUT started, then crashed under the functional tests *)
  | Harness  (** the harness gave up: timeout, breaker skip, … *)

type crash_cause =
  | Uncaught of string       (** printed exception from the SUT *)
  | Stack_overflow_crash     (** [Stack_overflow] escaped the simulator *)
  | Out_of_memory_crash      (** [Out_of_memory] escaped the simulator *)
  | Fuel_exhausted of int    (** cooperative step budget (the argument) ran out *)
  | Timeout of float         (** every attempt overran this many seconds *)
  | Breaker_open of string
      (** classified without execution: the circuit breaker for this
          (SUT × fault class) bucket was open *)

type crash = {
  cause : crash_cause;
  phase : crash_phase;
  backtrace : string;  (** captured backtrace; may be empty *)
}

type t =
  | Startup_failure of string
      (** the SUT refused to start — it detected the configuration error *)
  | Test_failure of string list
      (** the SUT started but the functional tests failed (one message
          per failed test) — the error escaped the parser *)
  | Passed
      (** the SUT started and passed all tests: the mutation was either
          harmless or silently ignored *)
  | Not_applicable of string
      (** the scenario could not be expressed in the system's
          configuration language *)
  | Crashed of crash
      (** the injection did not complete normally: the SUT (or the
          harness around it) crashed, hung, or was skipped *)

val detected : t -> bool
(** Startup, functional-test, or crash detection — a crash surfaces the
    error loudly, it just does so by taking the process down rather than
    by diagnosing it. *)

val label : t -> string
(** ["startup"], ["functional"], ["ignored"], ["n/a"], ["crashed"]. *)

val phase_label : crash_phase -> string
(** ["boot"], ["test"], ["harness"]. *)

val phase_of_label : string -> crash_phase option
(** Inverse of {!phase_label}. *)

val cause_to_string : crash_cause -> string
(** Machine-readable cause code (["exn:…"], ["stack-overflow"],
    ["out-of-memory"], ["fuel:N"], ["timeout:S"], ["breaker:…"]) as
    stored in the journal. *)

val cause_of_string : string -> crash_cause option
(** Exact inverse of {!cause_to_string}. *)

val cause_summary : crash_cause -> string
(** Human-readable one-liner for a cause. *)

val crash_summary : crash -> string
(** ["<cause summary> [<phase>]"] — stable across runs (no backtrace),
    so it can feed signature clustering. *)

val pp : Format.formatter -> t -> unit
