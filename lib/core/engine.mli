(** The injection engine: the end-to-end pipeline of Figure 1.

    For each fault scenario: apply the mutation to the abstract
    representation of the initial configuration, serialize the mutated
    trees back to the native formats, start the SUT on the faulty files,
    run the functional tests, and classify the outcome. *)

val parse_default_config : Suts.Sut.t -> (Conftree.Config_set.t, string) result
(** Parse every default configuration file of the SUT with its declared
    format. *)

val parse_config :
  Suts.Sut.t -> (string * string) list -> (Conftree.Config_set.t, string) result
(** Same, over explicit file contents (used by the comparison benchmark,
    which starts from a non-default configuration). *)

val serialize_config :
  Suts.Sut.t -> Conftree.Config_set.t -> ((string * string) list, string) result
(** Inverse of {!parse_config}; fails when a tree is not expressible in
    its file's format. *)

val boot_and_test : Suts.Sut.t -> (string * string) list -> Outcome.t
(** The tail of the pipeline: boot the SUT on already-serialized
    configuration files and run its functional tests.  A SUT that raises
    is classified as a startup or test failure, never an exception.
    Exposed for callers (e.g. [Conferr_adapt]) that serialize mutants
    themselves — [run_scenario] is [apply]; [serialize_config];
    [boot_and_test]. *)

val run_scenario :
  sut:Suts.Sut.t -> base:Conftree.Config_set.t -> Errgen.Scenario.t -> Outcome.t

type config_error = { sut_name : string; message : string }
(** The SUT's own default configuration failed to parse — a harness or
    SUT-definition bug, reported structurally rather than as an
    exception so callers can surface it without crashing. *)

val config_error_to_string : config_error -> string

val run :
  ?jobs:int -> sut:Suts.Sut.t -> scenarios:Errgen.Scenario.t list -> unit ->
  (Profile.t, config_error) result
(** Runs every scenario against the SUT's default configuration.
    [jobs] (default 1) selects the number of worker domains; see
    {!run_from} for the determinism guarantee. *)

val run_from :
  ?jobs:int -> sut:Suts.Sut.t -> base:Conftree.Config_set.t ->
  scenarios:Errgen.Scenario.t list -> unit -> Profile.t
(** Campaign over an already-parsed base configuration.  The scenario
    loop goes through {!Conferr_pool.map}: [jobs = 1] (default) is the
    classic sequential path, [jobs > 1] shards scenarios across that
    many domains.  Entries are always in scenario-list order and each
    scenario's outcome is independent of scheduling, so the profile is
    identical for any [jobs]. *)

val baseline_ok : Suts.Sut.t -> (unit, string) result
(** Sanity check: the unmodified default configuration must boot and
    pass all functional tests. *)
