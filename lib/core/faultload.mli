(** The shared journal-faultload regenerator.

    [gaps], [infer] and [repair] all replay recorded campaign journals:
    each needs the exact scenario list the journal was recorded from,
    re-derived from the campaign seed.  The derivation must be identical
    across the three consumers — a journal replayed against a slightly
    different faultload silently mismatches scenario ids — so it lives
    here rather than being repeated per subcommand. *)

val journal_scenarios :
  seed:int -> Suts.Sut.t -> Conftree.Config_set.t -> Errgen.Scenario.t list
(** The paper typo faultload at [seed] plus, for the DNS SUTs, the
    RFC 1912 semantic scenarios with ids relabelled like
    [conferr semantic] ([semantic-0001], ...). *)
