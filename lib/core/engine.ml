module Config_set = Conftree.Config_set

let src = Logs.Src.create "conferr.engine" ~doc:"ConfErr injection engine"

module Log = (val Logs.src_log src : Logs.LOG)

let ( let* ) = Result.bind

let parse_config (sut : Suts.Sut.t) files =
  List.fold_left
    (fun acc (file, fmt) ->
      let* set = acc in
      match List.assoc_opt file files with
      | None -> Error (Printf.sprintf "no content provided for %S" file)
      | Some text ->
        (match fmt.Formats.Registry.parse text with
         | Ok tree -> Ok (Config_set.add set file tree)
         | Error e ->
           Error
             (Printf.sprintf "parsing %S: %s" file (Formats.Parse_error.to_string e))))
    (Ok Config_set.empty) sut.Suts.Sut.config_files

let parse_default_config (sut : Suts.Sut.t) =
  parse_config sut sut.Suts.Sut.default_config

let serialize_config (sut : Suts.Sut.t) set =
  List.fold_left
    (fun acc (file, fmt) ->
      let* files = acc in
      match Config_set.find set file with
      | None -> Error (Printf.sprintf "mutated configuration lost file %S" file)
      | Some tree ->
        (match fmt.Formats.Registry.serialize tree with
         | Ok text -> Ok (files @ [ (file, text) ])
         | Error msg -> Error (Printf.sprintf "serializing %S: %s" file msg)))
    (Ok []) sut.Suts.Sut.config_files

let boot_and_test (sut : Suts.Sut.t) files =
  (* A SUT that raises is a SUT that crashed: classify it like the real
     tool would classify a daemon dying on a faulty configuration,
     rather than letting the exception kill the whole campaign. *)
  match sut.Suts.Sut.boot files with
  | exception exn ->
    Outcome.Startup_failure
      (Printf.sprintf "SUT crashed during startup: %s" (Printexc.to_string exn))
  | Error msg -> Outcome.Startup_failure msg
  | Ok instance ->
    (match instance.Suts.Sut.run_tests () with
     | exception exn ->
       Outcome.Test_failure
         [ Printf.sprintf "SUT crashed under test: %s" (Printexc.to_string exn) ]
     | results ->
       (* a shutdown script that itself fails must not override the test
          verdict — the experiment already has its answer *)
       (try instance.Suts.Sut.shutdown () with _ -> ());
       let failures =
         List.filter_map
           (fun (r : Suts.Sut.test_result) ->
             if r.passed then None
             else Some (Printf.sprintf "%s: %s" r.test_name r.detail))
           results
       in
       if failures = [] then Outcome.Passed else Outcome.Test_failure failures)

let run_scenario ~sut ~base (scenario : Errgen.Scenario.t) =
  match scenario.apply base with
  | exception exn ->
    Outcome.Not_applicable
      (Printf.sprintf "scenario raised: %s" (Printexc.to_string exn))
  | Error msg -> Outcome.Not_applicable msg
  | Ok mutated ->
    (match serialize_config sut mutated with
     | Error msg -> Outcome.Not_applicable msg
     | Ok files -> boot_and_test sut files)

let run_from ?(jobs = 1) ~sut ~base ~scenarios () =
  Log.info (fun m ->
      m "running %d scenarios against %s on %d domain(s)" (List.length scenarios)
        sut.Suts.Sut.sut_name (max 1 jobs));
  (* the campaign loop is a pure map over scenarios, so it goes through
     the shared scheduler: jobs = 1 runs in this domain in list order
     (the classic sequential path), jobs > 1 shards across domains with
     results landing in their input slot — same profile either way *)
  let entries =
    Conferr_pool.map ~jobs
      (fun _ (s : Errgen.Scenario.t) ->
        let outcome = run_scenario ~sut ~base s in
        if jobs <= 1 then
          Log.debug (fun m ->
              m "%s [%s] %s" s.id (Outcome.label outcome) s.description);
        {
          Profile.scenario_id = s.id;
          class_name = s.class_name;
          description = s.description;
          outcome;
        })
      (Array.of_list scenarios)
  in
  Profile.make ~sut_name:sut.Suts.Sut.sut_name (Array.to_list entries)

type config_error = { sut_name : string; message : string }

let config_error_to_string { sut_name; message } =
  Printf.sprintf "default configuration of %s does not parse: %s" sut_name message

let run ?jobs ~sut ~scenarios () =
  match parse_default_config sut with
  | Error message -> Error { sut_name = sut.Suts.Sut.sut_name; message }
  | Ok base -> Ok (run_from ?jobs ~sut ~base ~scenarios ())

let baseline_ok (sut : Suts.Sut.t) =
  let* base = parse_default_config sut in
  let* files = serialize_config sut base in
  match boot_and_test sut files with
  | Outcome.Passed -> Ok ()
  | Outcome.Startup_failure msg ->
    Error (Printf.sprintf "default configuration fails to start: %s" msg)
  | Outcome.Test_failure msgs ->
    Error
      (Printf.sprintf "default configuration fails functional tests: %s"
         (String.concat "; " msgs))
  | Outcome.Not_applicable msg -> Error msg
  | Outcome.Crashed c ->
    Error
      (Printf.sprintf "default configuration crashed the harness: %s"
         (Outcome.crash_summary c))
