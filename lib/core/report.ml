module Rng = Conferr_util.Rng

type section = { title : string; body : string }

type t = { sut_name : string; version : string; sections : section list }

let profile_sections ~seed ~faultload sut =
  let rng = Rng.create seed in
  match Engine.parse_default_config sut with
  | Error msg -> ([ { title = "Error"; body = msg } ], [])
  | Ok base ->
    let scenarios = Campaign.typo_scenarios ~rng ~faultload sut base in
    let profile = Engine.run_from ~sut ~base ~scenarios () in
    let ignored =
      List.filter_map
        (fun (e : Profile.entry) ->
          if e.outcome = Outcome.Passed then Some e.description else None)
        profile.Profile.entries
    in
    ( [
        { title = "Resilience to typos"; body = Profile.render profile };
        {
          title = "Outcomes by cognitive level";
          body = Profile.render_by_cognitive_level profile;
        };
      ],
      ignored )

let variations_section ~seed ~excluded sut =
  let t = Structural_check.run ~rng:(Rng.create seed) ~excluded ~sut () in
  let rows =
    List.map
      (fun (r : Structural_check.row) ->
        Printf.sprintf "  %-32s %s"
          (Errgen.Variations.class_title r.class_name)
          (Structural_check.support_label r.support))
      t.Structural_check.rows
  in
  {
    title = "Structural variations accepted";
    body =
      String.concat "\n"
        (rows
        @ [
            Printf.sprintf "  %% of assumptions satisfied: %.0f%%"
              t.Structural_check.satisfied_percent;
            "";
          ]);
  }

let semantic_section ~codec sut =
  match Engine.parse_default_config sut with
  | Error msg -> { title = "Semantic errors"; body = msg }
  | Ok base ->
    let scenarios =
      Dnsmodel.Rfc1912.scenarios ~codec ~faults:Dnsmodel.Rfc1912.all_faults base
      |> Errgen.Scenario.relabel_ids ~prefix:"semantic"
    in
    let profile = Engine.run_from ~sut ~base ~scenarios () in
    { title = "Semantic errors (RFC-1912)"; body = Profile.render profile }

let generate ?(seed = 42) ?(faultload = Campaign.paper_faultload)
    ?(excluded_variations = []) ?semantic_codec (sut : Suts.Sut.t) =
  let profile_secs, ignored = profile_sections ~seed ~faultload sut in
  let weakness_section =
    if ignored = [] then []
    else
      [
        {
          title = "Silently accepted mutations (latent-error candidates)";
          body =
            String.concat "\n"
              (List.map (fun d -> "  - " ^ d)
                 (List.filteri (fun i _ -> i < 15) ignored)
              @
              (if List.length ignored > 15 then
                 [ Printf.sprintf "  ... and %d more" (List.length ignored - 15) ]
               else [])
              @ [ "" ]);
        };
      ]
  in
  let semantic_secs =
    match semantic_codec with
    | None -> []
    | Some codec -> [ semantic_section ~codec sut ]
  in
  {
    sut_name = sut.sut_name;
    version = sut.version;
    sections =
      profile_secs
      @ [ variations_section ~seed ~excluded:excluded_variations sut ]
      @ semantic_secs @ weakness_section;
  }

let render t =
  let header = Printf.sprintf "# ConfErr assessment: %s\n" t.version in
  let body =
    List.map (fun s -> Printf.sprintf "## %s\n\n%s" s.title s.body) t.sections
  in
  String.concat "\n" (header :: body)

let weaknesses t =
  List.concat_map
    (fun s ->
      if
        Conferr_util.Strutil.is_prefix ~prefix:"Silently accepted" s.title
      then
        Conferr_util.Strutil.lines s.body
        |> List.filter_map (Conferr_util.Strutil.drop_prefix ~prefix:"  - ")
      else [])
    t.sections
