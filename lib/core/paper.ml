module Rng = Conferr_util.Rng
module Texttable = Conferr_util.Texttable
module Rfc1912 = Dnsmodel.Rfc1912

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)
(* ------------------------------------------------------------------ *)

type table1 = { profiles : Profile.t list }

let table1 ?(seed = 42) ?(faultload = Campaign.paper_faultload) () =
  let run_sut (sut, faultload) =
    let rng = Rng.create seed in
    match Engine.parse_default_config sut with
    | Error msg -> invalid_arg msg
    | Ok base ->
      let scenarios = Campaign.typo_scenarios ~rng ~faultload sut base in
      Engine.run_from ~sut ~base ~scenarios ()
  in
  (* Apache's 98-directive default file makes deletions dominate its
     faultload (as in the paper, where Apache saw 120 injections against
     MySQL's 327); one typo per selected directive keeps that balance. *)
  let apache_faultload = { faultload with Campaign.typos_per_directive = 1 } in
  {
    profiles =
      List.map run_sut
        [
          (Suts.Mini_mysql.sut, faultload);
          (Suts.Mini_pg.sut, faultload);
          (Suts.Mini_apache.sut, apache_faultload);
        ];
  }

let render_table1 { profiles } =
  let summaries = List.map (fun p -> (p.Profile.sut_name, Profile.summarize p)) profiles in
  let pct count total = Texttable.percentage ~count ~total in
  let row label value_of =
    label :: List.map (fun (_, s) -> value_of s) summaries
  in
  let header = "" :: List.map fst summaries in
  Texttable.render ~header
    [
      row "# of Injected Errors" (fun s -> Printf.sprintf "%d (100%%)" s.Profile.total);
      row "Detected by system at startup" (fun s -> pct s.Profile.startup s.Profile.total);
      row "Detected by functional tests" (fun s ->
          pct s.Profile.functional s.Profile.total);
      row "Ignored" (fun s -> pct s.Profile.ignored s.Profile.total);
    ]

(* ------------------------------------------------------------------ *)
(* Table 2                                                              *)
(* ------------------------------------------------------------------ *)

type table2 = { checks : Structural_check.t list }

let table2 ?(seed = 42) ?(count = 10) () =
  let check ?excluded sut =
    Structural_check.run ~rng:(Rng.create seed) ~count ?excluded ~sut ()
  in
  {
    checks =
      [
        check Suts.Mini_mysql.sut;
        check Suts.Mini_pg.sut;
        (* Apache's sections are scoping containers (<Directory>,
           <VirtualHost>), not file divisions: the section-ordering class
           does not apply, matching the paper's "n/a". *)
        check ~excluded:[ Errgen.Variations.Reorder_sections ] Suts.Mini_apache.sut;
      ];
  }

let render_table2 { checks } =
  let header = "" :: List.map (fun c -> c.Structural_check.sut_name) checks in
  let class_rows =
    List.map
      (fun class_name ->
        Errgen.Variations.class_title class_name
        :: List.map
             (fun c ->
               let row =
                 List.find
                   (fun (r : Structural_check.row) -> r.class_name = class_name)
                   c.Structural_check.rows
               in
               Structural_check.support_label row.support)
             checks)
      Errgen.Variations.all_classes
  in
  let percent_row =
    "% of assumptions satisfied"
    :: List.map
         (fun c -> Printf.sprintf "%.0f%%" c.Structural_check.satisfied_percent)
         checks
  in
  Texttable.render ~header (class_rows @ [ percent_row ])

(* ------------------------------------------------------------------ *)
(* Table 3                                                              *)
(* ------------------------------------------------------------------ *)

type verdict = Found | Not_found | Na

let verdict_label = function
  | Found -> "found"
  | Not_found -> "not found"
  | Na -> "N/A"

type table3_row = { fault : Rfc1912.fault; bind : verdict; djbdns : verdict }

type table3 = { rows : table3_row list }

let verdict_for ~sut ~codec fault =
  match Engine.parse_default_config sut with
  | Error msg -> invalid_arg msg
  | Ok base ->
    let scenarios = Rfc1912.scenarios ~codec ~faults:[ fault ] base in
    if scenarios = [] then Na
    else begin
      let outcomes = List.map (fun s -> Engine.run_scenario ~sut ~base s) scenarios in
      let applicable =
        List.filter
          (function Outcome.Not_applicable _ -> false | _ -> true)
          outcomes
      in
      if applicable = [] then Na
      else if
        (* the SUT "finds" the fault class when it flags every instance *)
        List.for_all Outcome.detected applicable
      then Found
      else Not_found
    end

let table3 ?seed:_ ?(faults = Rfc1912.paper_faults) () =
  let bind_codec = Dnsmodel.Codec.bind ~zones:Suts.Mini_bind.zones in
  let tinydns_codec = Dnsmodel.Codec.tinydns ~file:Suts.Mini_djbdns.data_file in
  {
    rows =
      List.map
        (fun fault ->
          {
            fault;
            bind = verdict_for ~sut:Suts.Mini_bind.sut ~codec:bind_codec fault;
            djbdns = verdict_for ~sut:Suts.Mini_djbdns.sut ~codec:tinydns_codec fault;
          })
        faults;
  }

let render_table3 { rows } =
  Texttable.render
    ~header:[ "Err#"; "Description of fault"; "BIND"; "djbdns" ]
    (List.mapi
       (fun i r ->
         [
           string_of_int (i + 1);
           Rfc1912.fault_description r.fault;
           verdict_label r.bind;
           verdict_label r.djbdns;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Figure 3                                                             *)
(* ------------------------------------------------------------------ *)

type figure3 = { results : Compare.t list }

let figure3 ?(seed = 42) ?(experiments = 20) () =
  let run sut config =
    match Compare.run ~rng:(Rng.create seed) ~experiments ~sut ~config () with
    | Ok t -> t
    | Error msg -> invalid_arg msg
  in
  {
    results =
      [
        run Suts.Mini_pg.sut ("postgresql.conf", Suts.Mini_pg.full_config);
        run Suts.Mini_mysql.sut ("my.cnf", Suts.Mini_mysql.full_config);
      ];
  }

let render_figure3 { results } = Compare.render_figure3 results

(* ------------------------------------------------------------------ *)
(* Extension: the §5.5 comparison method applied to the DNS pair        *)
(* ------------------------------------------------------------------ *)

let figure_dns ?(seed = 42) ?(experiments = 20) () =
  (* typos in the rdata of every record — the "directive values" of a
     zone-style configuration.  Zone records carry their data in the node
     value for BIND and in attribute fields for tinydns, so this reuses
     the campaign machinery and summarizes detection per server. *)
  let profile_of sut =
    let rng = Rng.create seed in
    match Engine.parse_default_config sut with
    | Error msg -> invalid_arg msg
    | Ok base ->
      let faultload =
        { Campaign.delete_directives = false; directives_per_section = 10;
          typos_per_directive = experiments }
      in
      let scenarios =
        Campaign.typo_scenarios ~rng ~faultload sut base
        |> List.filter (fun (s : Errgen.Scenario.t) ->
               Conferr_util.Strutil.is_prefix ~prefix:"typo/value" s.class_name)
      in
      Engine.run_from ~sut ~base ~scenarios ()
  in
  [ profile_of Suts.Mini_bind.sut; profile_of Suts.Mini_djbdns.sut ]

let render_figure_dns profiles =
  let row (p : Profile.t) =
    let s = Profile.summarize p in
    [
      p.Profile.sut_name;
      string_of_int s.Profile.total;
      Printf.sprintf "%.0f%%" (100. *. Profile.detection_rate s);
    ]
  in
  Texttable.render
    ~aligns:[ Texttable.Left; Texttable.Right; Texttable.Right ]
    ~header:[ "DNS server"; "record-data typos"; "detected" ]
    (List.map row profiles)

(* ------------------------------------------------------------------ *)
(* Configuration-process benchmark (§5.5's described procedure)         *)
(* ------------------------------------------------------------------ *)

let mysql_tasks =
  [
    { Process_bench.directive = "max_connections"; new_value = "200" };
    { Process_bench.directive = "key_buffer_size"; new_value = "32M" };
    { Process_bench.directive = "sort_buffer_size"; new_value = "1M" };
    { Process_bench.directive = "table_open_cache"; new_value = "128" };
  ]

let postgres_tasks =
  [
    { Process_bench.directive = "max_connections"; new_value = "200" };
    { Process_bench.directive = "shared_buffers"; new_value = "32MB" };
    { Process_bench.directive = "work_mem"; new_value = "4MB" };
    { Process_bench.directive = "checkpoint_segments"; new_value = "8" };
  ]

let process_benchmark ?(seed = 42) ?(experiments = 20) () =
  let run sut config tasks =
    match
      Process_bench.run ~rng:(Rng.create seed) ~experiments ~sut ~config ~tasks ()
    with
    | Ok t -> t
    | Error msg -> invalid_arg msg
  in
  [
    run Suts.Mini_pg.sut ("postgresql.conf", Suts.Mini_pg.full_config) postgres_tasks;
    run Suts.Mini_mysql.sut ("my.cnf", Suts.Mini_mysql.full_config) mysql_tasks;
  ]

let render_process_benchmark results =
  String.concat "\n" (List.map Process_bench.render results)

(* ------------------------------------------------------------------ *)

let run_all ?(seed = 42) () =
  let banner title = Printf.sprintf "=== %s ===\n" title in
  String.concat "\n"
    [
      banner "Table 1: Resilience to typos";
      render_table1 (table1 ~seed ());
      banner "Table 2: Resilience to structural errors";
      render_table2 (table2 ~seed ());
      banner "Table 3: Resilience to semantic errors (RFC-1912, DNS)";
      render_table3 (table3 ());
      banner "Figure 3: Resilience to typos in directive values, MySQL vs Postgres";
      render_figure3 (figure3 ~seed ());
      banner "Configuration-process benchmark (errors near valid edits, §5.5)";
      render_process_benchmark (process_benchmark ~seed ());
      banner "Extension: record-data typo resilience, BIND vs djbdns";
      render_figure_dns (figure_dns ~seed ());
    ]
