(** The resilience profile — ConfErr's sole output (paper §3.1).

    One entry per synthesized injection, recording the injected error and
    the corresponding system behaviour; summaries aggregate the counts
    the paper's Table 1 reports. *)

type entry = {
  scenario_id : string;
  class_name : string;
  description : string;
  outcome : Outcome.t;
}

type t = { sut_name : string; entries : entry list }

type summary = {
  total : int;          (** injections that were applicable *)
  startup : int;        (** detected by the system at startup *)
  functional : int;     (** detected by the functional tests *)
  ignored : int;        (** not detected *)
  not_applicable : int; (** scenarios the format could not express *)
  crashed : int;        (** harness-level crashes (sandbox, timeout, breaker) *)
}

val make : sut_name:string -> entry list -> t

val summarize : t -> summary

val summarize_class : t -> string -> summary
(** Summary restricted to entries whose class name starts with the given
    prefix. *)

val class_names : t -> string list
(** Distinct class names in first-appearance order. *)

val filter : (entry -> bool) -> t -> t

val detection_rate : summary -> float
(** Detected (startup + functional + crashed) over applicable total; 0
    when empty. *)

val render : t -> string
(** Aggregate table: one row per fault class plus a totals row.  A
    "crashed" column appears only when the profile contains at least one
    {!Outcome.Crashed} entry, so crash-free campaigns render exactly as
    they did before the hardening layer existed. *)

val render_entries : ?only_detected:bool -> t -> string
(** Per-injection listing (the raw profile). *)

val render_by_cognitive_level : t -> string
(** Summaries grouped by GEMS cognitive level (paper §2): skill-based,
    rule-based, knowledge-based, plus an "unclassified" row when scenario
    classes fall outside the built-in taxonomy. *)

val to_csv : t -> string
(** Machine-readable export: one line per entry,
    [scenario_id,outcome,class,description] with RFC-4180 quoting. *)
