(** Candidate validation: lint-clean AND SUT-accepted (doc/repair.md).

    A candidate repair is only as good as the configuration it produces.
    Each candidate is applied, serialized to the native formats,
    re-parsed (so the static checker judges the actual bytes, not the
    in-memory tree), linted, and finally booted in the
    {!Conferr_harden.Sandbox} with the SUT's functional tests — the same
    two predicates [conferr lint] and a campaign enforce.  Everything
    here is a pure function of its inputs, so validating candidates
    through {!Conferr_pool.map} is deterministic for any [--jobs]. *)

type verdict = {
  candidate : Generate.candidate;
  distance : int;  (** {!Redit.total_cost} from the broken configuration *)
  lint_clean : bool;
      (** no finding at or above [Warning] on the re-parsed repair *)
  sut_ok : bool;  (** the sandboxed boot + functional tests passed *)
  outcome : string;  (** {!Conferr.Outcome.label} of the sandbox run *)
  files : (string * string) list;
      (** the serialized repaired files; [[]] when apply/serialize
          failed *)
  repaired : Conftree.Config_set.t option;
      (** the re-parsed repaired set, when it parsed *)
  error : string option;  (** apply/serialize/re-parse failure *)
}

val ok : verdict -> bool
(** [lint_clean && sut_ok] — the acceptance predicate. *)

val check :
  ?nearest:Conferr_lint.Checker.nearest ->
  sut:Suts.Sut.t ->
  rules:Conferr_lint.Rule.t list ->
  broken:Conftree.Config_set.t ->
  Generate.candidate ->
  verdict
