module Node = Conftree.Node
module Path = Conftree.Path
module Config_set = Conftree.Config_set
module Rule = Conferr_lint.Rule
module Finding = Conferr_lint.Finding
module Checker = Conferr_lint.Checker

type candidate = {
  origin : string;
  description : string;
  edits : Redit.t list;
  cluster : string list;
}

let default_nearest ~vocabulary word = Conferr.Suggest.nearest ~vocabulary word

let typed_findings ?(nearest = default_nearest) ~rules set =
  List.concat_map
    (fun rule ->
      Checker.run ~nearest ~rules:[ rule ] set
      |> List.map (fun finding -> (rule, finding)))
    rules

(* ------------------------------------------------------------------ *)
(* Tree lookups shared by the generators. *)

let directives root =
  Node.find_all (fun n -> n.Node.kind = Node.kind_directive) root

let find_directive set file ~canon name =
  match Config_set.find set file with
  | None -> None
  | Some root ->
    let want = canon name in
    List.find_opt
      (fun (_, (n : Node.t)) -> canon n.name = want)
      (directives root)

let stock_names stock file =
  match Config_set.find stock file with
  | None -> []
  | Some root ->
    directives root
    |> List.fold_left
         (fun acc (_, (n : Node.t)) ->
           if n.name = "" || List.mem n.name acc then acc else n.name :: acc)
         []
    |> List.rev

(* Invert the deletion of [name]: re-insert the stock node at its stock
   position, provided the enclosing parent still exists in [broken]. *)
let reinsert ~stock ~broken ~file ~canon name =
  match find_directive stock file ~canon name with
  | None -> None
  | Some (spath, snode) -> (
    match Path.parent spath with
    | None -> None
    | Some (parent, index) -> (
      let parent_ok =
        match Config_set.find broken file with
        | None -> false
        | Some root -> Node.get root parent <> None
      in
      match parent_ok with
      | false -> None
      | true -> Some { Redit.file; path = parent; op = Insert { index; node = snode } }))

(* One edit moving directive [name] of [file] back to its stock state:
   value restored, deleted directive re-inserted, spurious directive
   dropped; [None] when broken and stock already agree on it. *)
let restore_name ?(canon = Rule.lower) ~stock ~broken ~file name =
  match
    (find_directive stock file ~canon name, find_directive broken file ~canon name)
  with
  | Some (_, snode), Some (bpath, bnode) ->
    if bnode.Node.value = snode.Node.value then None
    else Some { Redit.file; path = bpath; op = Set_value snode.Node.value }
  | Some _, None -> reinsert ~stock ~broken ~file ~canon name
  | None, Some (bpath, _) -> Some { Redit.file; path = bpath; op = Delete }
  | None, None -> None

(* ------------------------------------------------------------------ *)
(* Structural diff against stock: the universal inverter.  A parallel
   walk aligning children structurally (one-node lookahead, enough for
   single-fault mutants), each divergence inverted into a Redit. *)

let stock_diff ~stock ~broken =
  let edits = ref [] in
  let emit e = edits := e :: !edits in
  let rec walk file path i (ss : Node.t list) (bs : Node.t list) =
    match (ss, bs) with
    | [], [] -> ()
    | s :: srest, [] ->
      emit { Redit.file; path; op = Insert { index = i; node = s } };
      walk file path (i + 1) srest []
    | [], _ :: brest ->
      emit { Redit.file; path = path @ [ i ]; op = Delete };
      walk file path (i + 1) [] brest
    | s :: srest, b :: brest ->
      if Node.equal_modulo_attrs s b then walk file path (i + 1) srest brest
      else if
        List.length ss > List.length bs
        && (match srest with x :: _ -> Node.equal_modulo_attrs x b | [] -> false)
      then begin
        (* s was deleted from broken: b aligns with the next stock node *)
        emit { Redit.file; path; op = Insert { index = i; node = s } };
        walk file path (i + 1) srest (b :: brest)
      end
      else if
        List.length bs > List.length ss
        && (match brest with x :: _ -> Node.equal_modulo_attrs s x | [] -> false)
      then begin
        (* b was inserted into broken: s aligns with the next broken node *)
        emit { Redit.file; path = path @ [ i ]; op = Delete };
        walk file path (i + 1) (s :: srest) brest
      end
      else if s.Node.kind = b.Node.kind then begin
        let here = path @ [ i ] in
        if s.Node.name <> b.Node.name then
          emit { Redit.file; path = here; op = Rename s.Node.name };
        if s.Node.value <> b.Node.value then
          emit { Redit.file; path = here; op = Set_value s.Node.value };
        (let seq = List.equal Node.equal_modulo_attrs in
         if not (seq s.Node.children b.Node.children) then
           walk file here 0 s.Node.children b.Node.children);
        walk file path (i + 1) srest brest
      end
      else begin
        emit { Redit.file; path = path @ [ i ]; op = Delete };
        emit { Redit.file; path; op = Insert { index = i; node = s } };
        walk file path (i + 1) srest brest
      end
  in
  List.iter
    (fun (file, sroot) ->
      match Config_set.find broken file with
      | None -> emit { Redit.file; path = []; op = Restore_file sroot }
      | Some broot ->
        if not (Node.equal_modulo_attrs sroot broot) then
          walk file [] 0 sroot.Node.children broot.Node.children)
    (Config_set.to_list stock);
  List.rev !edits

(* ------------------------------------------------------------------ *)
(* Finding-driven generators: the plugins in reverse. *)

let node_at broken file path =
  Option.bind (Config_set.find broken file) (fun root -> Node.get root path)

let int_of_value v = int_of_string_opt (String.trim v)

let per_finding ~nearest ~stock ~broken (rule : Rule.t) (f : Finding.t) =
  let file = f.Finding.file in
  let mk origin edits =
    { origin; description = f.Finding.message; edits; cluster = [] }
  in
  match rule.Rule.body with
  | Rule.Unknown { vocabulary; _ } -> (
    match node_at broken file f.Finding.path with
    | None -> []
    | Some n ->
      let word = n.Node.name in
      let suggestion =
        match f.Finding.suggestion with
        | Some s -> [ mk "suggestion" [ { Redit.file; path = f.Finding.path; op = Rename s } ] ]
        | None -> []
      in
      let vocab =
        List.sort_uniq compare (vocabulary @ stock_names stock file)
      in
      let corrections =
        Errgen.Typo.corrections ~vocabulary:vocab word
        |> List.filteri (fun i _ -> i < 3)
        |> List.map (fun (w, _) ->
               mk "correction" [ { Redit.file; path = f.Finding.path; op = Rename w } ])
      in
      suggestion @ corrections)
  | Rule.Value { name; canon; vtype; _ } -> (
    match node_at broken file f.Finding.path with
    | None -> []
    | Some n ->
      let value = Option.value ~default:"" n.Node.value in
      let stock_value =
        match find_directive stock file ~canon name with
        | Some (_, sn) ->
          [ mk "stock-value"
              [ { Redit.file; path = f.Finding.path; op = Set_value sn.Node.value } ] ]
        | None -> []
      in
      let typed =
        match vtype with
        | Rule.Int_range (lo, hi) -> (
          match int_of_value value with
          | Some i when i < lo || i > hi ->
            let clamped = if i < lo then lo else hi in
            [ mk "clamp"
                [ { Redit.file;
                    path = f.Finding.path;
                    op = Set_value (Some (string_of_int clamped));
                  } ] ]
          | _ -> [])
        | Rule.Enum { allowed; _ } -> (
          match nearest ~vocabulary:allowed value with
          | Some (w, _) when w <> value ->
            [ mk "enum-nearest"
                [ { Redit.file; path = f.Finding.path; op = Set_value (Some w) } ] ]
          | _ -> [])
        | Rule.Bool_word | Rule.Custom _ -> []
      in
      stock_value @ typed)
  | Rule.Required { name; canon; file = rfile; _ } -> (
    match reinsert ~stock ~broken ~file:rfile ~canon name with
    | Some e -> [ mk "restore-required" [ e ] ]
    | None -> [])
  | Rule.No_duplicates _ ->
    [ mk "drop-duplicate" [ { Redit.file; path = f.Finding.path; op = Delete } ] ]
  | Rule.Implies { canon; _ } ->
    (* restore each stock directive the failure message implicates; the
       joint (multi-edit) variant comes from the Cooccur clusters *)
    stock_names stock file
    |> List.filter (fun name ->
           Conferr_infer.Template.mentions ~name f.Finding.message)
    |> List.filter_map (fun name ->
           restore_name ~canon ~stock ~broken ~file name)
    |> List.map (fun e -> mk "stock-value" [ e ])
  | Rule.Reference { name; canon; _ } -> (
    match find_directive stock file ~canon name with
    | Some (_, sn) ->
      [ mk "stock-value"
          [ { Redit.file; path = f.Finding.path; op = Set_value sn.Node.value } ] ]
    | None -> [])
  | Rule.Relation { canon; lhs; rhs; _ } ->
    (* a violated relation implicates every term: one joint candidate
       restoring all divergent participants at once (the multi-edit fix
       Cluster mines dynamically, derived here statically), plus the
       single-directive restores as cheaper alternatives *)
    let names =
      List.map
        (fun (t : Rule.term) -> t.Rule.t_name)
        (lhs.Rule.l_terms @ rhs.Rule.l_terms)
    in
    let restores =
      List.filter_map
        (fun name ->
          Option.map
            (fun e -> (name, e))
            (restore_name ~canon ~stock ~broken ~file name))
        names
    in
    let joint =
      match restores with
      | [] | [ _ ] -> []
      | _ ->
        [
          {
            origin = "relation";
            description = f.Finding.message;
            edits = List.map snd restores;
            cluster = List.map fst restores;
          };
        ]
    in
    joint @ List.map (fun (_, e) -> mk "stock-value" [ e ]) restores
  | Rule.Check_set _ -> (
    let suggestion =
      match f.Finding.suggestion with
      | Some s ->
        [ mk "suggestion" [ { Redit.file; path = f.Finding.path; op = Rename s } ] ]
      | None -> []
    in
    let restore =
      match (node_at broken file f.Finding.path, node_at stock file f.Finding.path) with
      | Some bn, Some sn when bn.Node.kind = sn.Node.kind ->
        let here = f.Finding.path in
        let renames =
          if bn.Node.name <> sn.Node.name then
            [ mk "restore-node" [ { Redit.file; path = here; op = Rename sn.Node.name } ] ]
          else []
        in
        let values =
          if bn.Node.value <> sn.Node.value then
            [ mk "restore-node"
                [ { Redit.file; path = here; op = Set_value sn.Node.value } ] ]
          else []
        in
        (* children deleted from the broken node: re-insert each stock
           child whose (kind, name) has fewer occurrences in broken *)
        let key (n : Node.t) = (n.Node.kind, String.lowercase_ascii n.Node.name) in
        let count k l = List.length (List.filter (fun c -> key c = k) l) in
        let inserts =
          List.mapi (fun idx c -> (idx, c)) sn.Node.children
          |> List.filter (fun (_, c) ->
                 count (key c) bn.Node.children < count (key c) sn.Node.children)
          |> List.map (fun (idx, c) ->
                 mk "restore-node"
                   [ { Redit.file; path = here; op = Insert { index = idx; node = c } } ])
        in
        renames @ values @ inserts
      | Some _, None ->
        [ mk "restore-node" [ { Redit.file; path = f.Finding.path; op = Delete } ] ]
      | _ -> []
    in
    suggestion @ restore)

(* ------------------------------------------------------------------ *)

let dedup cands =
  List.fold_left
    (fun acc c ->
      if List.exists (fun c' -> c'.edits = c.edits) acc then acc else c :: acc)
    [] cands
  |> List.rev

let candidates ?(nearest = default_nearest) ~sut:_ ~rules ~stock ~broken () =
  let findings = typed_findings ~nearest ~rules broken in
  let from_findings =
    List.concat_map
      (fun (rule, f) -> per_finding ~nearest ~stock ~broken rule f)
      findings
  in
  let diff_edits = stock_diff ~stock ~broken in
  let from_diff =
    match diff_edits with
    | [] -> []
    | _ :: _ when List.length diff_edits <= 8 ->
      (* the full inversion, plus each single divergence on its own *)
      let singles =
        if List.length diff_edits > 1 then
          List.map
            (fun e ->
              { origin = "stock-diff";
                description = Redit.describe ~broken e;
                edits = [ e ];
                cluster = [];
              })
            diff_edits
        else []
      in
      { origin = "stock-diff";
        description = "restore every divergence from the stock configuration";
        edits = diff_edits;
        cluster = [];
      }
      :: singles
    | _ -> []
  in
  let from_files =
    Config_set.to_list stock
    |> List.filter_map (fun (file, sroot) ->
           let differs =
             match Config_set.find broken file with
             | None -> true
             | Some broot -> not (Node.equal_modulo_attrs sroot broot)
           in
           if differs then
             Some
               { origin = "stock-file";
                 description = Printf.sprintf "replace '%s' with the stock file" file;
                 edits = [ { Redit.file; path = []; op = Restore_file sroot } ];
                 cluster = [];
               }
           else None)
  in
  dedup (from_findings @ from_diff @ from_files)
  |> List.stable_sort
       (fun a b ->
         compare (Redit.total_cost ~broken a.edits) (Redit.total_cost ~broken b.edits))
