module Node = Conftree.Node
module Path = Conftree.Path
module Config_set = Conftree.Config_set

type op =
  | Rename of string
  | Set_value of string option
  | Delete
  | Insert of { index : int; node : Node.t }
  | Restore_file of Node.t

type t = { file : string; path : Path.t; op : op }

let op_label e =
  match e.op with
  | Rename _ -> "rename"
  | Set_value _ -> "set-value"
  | Delete -> "delete"
  | Insert _ -> "insert"
  | Restore_file _ -> "restore-file"

let site e =
  match e.op with Insert { index; _ } -> e.path @ [ index ] | _ -> e.path

(* Rendered size of a subtree in characters — the common currency of
   delete/insert costs. *)
let rec chars (n : Node.t) =
  String.length n.name
  + (match n.value with None -> 0 | Some v -> 1 + String.length v)
  + List.fold_left (fun acc c -> acc + 1 + chars c) 0 n.children

let node_at broken e = Option.bind (Config_set.find broken e.file) (fun root -> Node.get root e.path)

let render_node (n : Node.t) =
  match n.value with
  | Some v when n.name <> "" -> Printf.sprintf "'%s' = '%s'" n.name v
  | Some v -> Printf.sprintf "'%s'" v
  | None when n.name <> "" -> Printf.sprintf "'%s'" n.name
  | None -> Printf.sprintf "<%s>" n.kind

let describe ~broken e =
  let old = node_at broken e in
  let old_name = match old with Some n -> n.Node.name | None -> "?" in
  match e.op with
  | Rename to_ -> Printf.sprintf "rename '%s' -> '%s'" old_name to_
  | Set_value (Some v) ->
    let was =
      match old with
      | Some { Node.value = Some w; _ } -> Printf.sprintf " (was '%s')" w
      | _ -> ""
    in
    Printf.sprintf "set '%s' = '%s'%s" old_name v was
  | Set_value None -> Printf.sprintf "clear value of '%s'" old_name
  | Delete ->
    Printf.sprintf "delete %s"
      (match old with Some n -> render_node n | None -> "?")
  | Insert { node; index } ->
    Printf.sprintf "insert %s at position %d" (render_node node) index
  | Restore_file _ -> Printf.sprintf "restore '%s' to the stock file" e.file

let cost ~broken e =
  let dist = Conferr_util.Strutil.damerau_levenshtein in
  match (e.op, node_at broken e) with
  | Rename to_, Some n -> max 1 (dist n.Node.name to_)
  | Rename to_, None -> String.length to_
  | Set_value v, Some n ->
    let old = Option.value ~default:"" n.Node.value in
    max 1 (dist old (Option.value ~default:"" v))
  | Set_value v, None -> String.length (Option.value ~default:"" v)
  | Delete, Some n -> max 1 (chars n)
  | Delete, None -> 1
  | Insert { node; _ }, _ -> max 1 (chars node)
  | Restore_file stock, _ ->
    let broken_chars =
      match Config_set.find broken e.file with Some r -> chars r | None -> 0
    in
    max 1 (broken_chars + chars stock)

let total_cost ~broken edits =
  List.fold_left (fun acc e -> acc + cost ~broken e) 0 edits

(* Deletes sort before inserts at the same site so a delete+insert pair
   at one position means "replace", never "delete what was inserted". *)
let op_rank e = match e.op with Delete -> 0 | _ -> 1

let apply set edits =
  let sorted =
    List.stable_sort
      (fun a b ->
        let c = Path.compare (site b) (site a) in
        if c <> 0 then c else compare (op_rank a) (op_rank b))
      edits
  in
  List.fold_left
    (fun acc e ->
      match acc with
      | Error _ as err -> err
      | Ok set -> (
        match e.op with
        | Restore_file stock when e.path = [] ->
          (* also (re-)adds a file absent from the set, e.g. one that
             never parsed *)
          Ok (Config_set.add set e.file stock)
        | _ ->
        let edit root =
          match e.op with
          | Rename name -> Node.update root e.path (fun n -> { n with Node.name })
          | Set_value value ->
            Node.update root e.path (fun n -> { n with Node.value = value })
          | Delete -> Node.delete root e.path
          | Insert { index; node } ->
            Node.insert_child root ~parent:e.path ~index node
          | Restore_file stock -> if e.path = [] then Some stock else None
        in
        match Config_set.update set e.file edit with
        | Some set -> Ok set
        | None ->
          Error
            (Printf.sprintf "repair edit %s at %s:%s does not apply"
               (op_label e) e.file (Path.to_string e.path))))
    (Ok set) sorted
