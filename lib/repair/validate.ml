module Finding = Conferr_lint.Finding
module Checker = Conferr_lint.Checker

type verdict = {
  candidate : Generate.candidate;
  distance : int;
  lint_clean : bool;
  sut_ok : bool;
  outcome : string;
  files : (string * string) list;
  repaired : Conftree.Config_set.t option;
  error : string option;
}

let ok v = v.lint_clean && v.sut_ok

let failed candidate ~distance error =
  {
    candidate;
    distance;
    lint_clean = false;
    sut_ok = false;
    outcome = "";
    files = [];
    repaired = None;
    error = Some error;
  }

let check ?(nearest = Generate.default_nearest) ~sut ~rules ~broken candidate =
  let distance = Redit.total_cost ~broken candidate.Generate.edits in
  match Redit.apply broken candidate.Generate.edits with
  | Error msg -> failed candidate ~distance msg
  | Ok repaired_tree -> (
    match Conferr.Engine.serialize_config sut repaired_tree with
    | Error msg -> failed candidate ~distance msg
    | Ok files -> (
      match Conferr.Engine.parse_config sut files with
      | Error msg -> failed candidate ~distance msg
      | Ok reparsed ->
        let findings = Checker.run ~nearest ~rules reparsed in
        let lint_clean =
          not (Checker.exceeds ~threshold:Finding.Warning findings)
        in
        let outcome = Conferr_harden.Sandbox.boot_and_test sut files in
        {
          candidate;
          distance;
          lint_clean;
          sut_ok = outcome = Conferr.Outcome.Passed;
          outcome = Conferr.Outcome.label outcome;
          files;
          repaired = Some reparsed;
          error = None;
        }))
