module Config_set = Conftree.Config_set
module Rule_file = Conferr_lint.Rule_file

(* Wrap the failure messages observed on the broken configuration as
   evidence rows so Cooccur mines them exactly as it mines journals:
   the stock/broken diff is the typed edit provenance, each message a
   "startup failure" observation. *)
let rows ~stock ~broken messages =
  let edits = Conferr_infer.Edit.diff ~base:stock ~mutated:broken in
  messages
  |> List.filter (fun m -> String.trim m <> "")
  |> List.mapi (fun i message ->
         {
           Conferr_infer.Evidence.scenario_id = Printf.sprintf "live-%d" i;
           class_name = "repair";
           description = "failure observed on the broken configuration";
           outcome = "startup";
           message;
           template = Conferr_infer.Template.mine message;
           edits;
         })

let of_names ~stock ~broken ~file ~why names =
  let edits =
    List.filter_map
      (fun name -> Generate.restore_name ~stock ~broken ~file name)
      names
  in
  match edits with
  | [] -> None
  | _ ->
    Some
      {
        Generate.origin = "cluster";
        description =
          Printf.sprintf "restore co-occurrence cluster {%s} (%s)"
            (String.concat ", " names) why;
        edits;
        cluster = names;
      }

let candidates ?(specs = []) ~stock ~broken ~messages () =
  let mined =
    Conferr_infer.Cooccur.candidates ~base:stock (rows ~stock ~broken messages)
    |> List.filter_map (fun (c : Conferr_infer.Candidate.t) ->
           match c.spec with
           | Some (Rule_file.F_implies_present { names; _ }) ->
             of_names ~stock ~broken ~file:c.file ~why:"mined from failure messages"
               names
           | _ -> None)
  in
  let from_specs =
    specs
    |> List.filter_map (fun (s : Rule_file.spec) ->
           match s.body with
           | Rule_file.F_implies_present { file; names; _ }
             when List.length names >= 2 ->
             let file =
               match file with
               | Some f -> f
               | None -> (
                 match Config_set.to_list stock with
                 | (f, _) :: _ -> f
                 | [] -> "")
             in
             of_names ~stock ~broken ~file
               ~why:(Printf.sprintf "rule %s" s.id)
               names
           | _ -> None)
  in
  (* keep first appearance of each edit set: mined clusters ahead of
     rule-file ones *)
  List.fold_left
    (fun acc (c : Generate.candidate) ->
      if List.exists (fun (c' : Generate.candidate) -> c'.edits = c.edits) acc
      then acc
      else c :: acc)
    [] (mined @ from_specs)
  |> List.rev
