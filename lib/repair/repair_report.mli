(** Rendering and export of a {!Pipeline.result} (doc/repair.md): the
    text report, the JSON document, Prometheus counters and the
    dashboard panel.  Everything here is a pure function of the result,
    hence byte-identical for any [--jobs]. *)

val render : Pipeline.result -> string
(** The text report: one block per target (status, distance, the chosen
    edit sequence with its ConfPath sites, cluster attribution) plus a
    trailing summary line. *)

val to_json : Pipeline.result -> Conferr_obsv.Json.t

val record_metrics : Conferr_obsv.Metrics.t -> Pipeline.result -> unit
(** [conferr_repair_targets_total{sut,status}],
    [conferr_repair_candidates_total{sut,result}] (validated candidates
    by chosen / rejected) and [conferr_repair_edits_total{sut,op}] over
    the applied repairs. *)

val dashboard_rows : Pipeline.result -> Conferr_obsv.Report.repair_row list
(** One row per target for the dashboard's repairs panel
    (doc/obsv.md). *)
