(** Candidate generation: the error plugins run in reverse
    (doc/repair.md).

    Each lint finding on the broken configuration is mapped back through
    the generator that plausibly produced it: unknown names become
    rename candidates (the finding's own did-you-mean suggestion first,
    then {!Errgen.Typo.corrections} over the rule vocabulary and the
    stock directive names), missing required directives are re-inserted
    with their stock nodes at their stock positions, out-of-range or
    mis-typed values are restored to stock / clamped into range / moved
    to the nearest allowed enum word, and duplicates are dropped.  A
    structural diff against the stock configuration supplies candidates
    for faults lint cannot localize (late failures, semantic zone
    errors), and a whole-file restoration is the ranked-last resort. *)

val default_nearest : Conferr_lint.Checker.nearest
(** {!Conferr.Suggest.nearest} — the oracle the CLI wires everywhere. *)

type candidate = {
  origin : string;
      (** generator tag: ["suggestion"], ["correction"], ["stock-value"],
          ["clamp"], ["enum-nearest"], ["restore-required"],
          ["drop-duplicate"], ["restore-node"], ["stock-diff"],
          ["cluster"], ["stock-file"] *)
  description : string;  (** one line, e.g. the finding that drove it *)
  edits : Redit.t list;
  cluster : string list;
      (** directive names of the {!Conferr_infer.Cooccur} cluster that
          grouped a multi-edit candidate; [[]] for single-fault
          candidates *)
}

val typed_findings :
  ?nearest:Conferr_lint.Checker.nearest ->
  rules:Conferr_lint.Rule.t list ->
  Conftree.Config_set.t ->
  (Conferr_lint.Rule.t * Conferr_lint.Finding.t) list
(** Per-rule evaluation of {!Conferr_lint.Checker.run}, pairing every
    finding with the rule that produced it — the typed input candidate
    generation needs.  Deterministic (rule order, then finding order). *)

val restore_name :
  ?canon:(string -> string) ->
  stock:Conftree.Config_set.t ->
  broken:Conftree.Config_set.t ->
  file:string -> string -> Redit.t option
(** One edit moving directive [name] of [file] back to its stock state:
    value restored, deleted directive re-inserted at its stock position,
    spurious directive dropped.  [None] when the two sets already agree
    on it.  [canon] (default {!Conferr_lint.Rule.lower}) normalizes
    names before matching. *)

val stock_diff :
  stock:Conftree.Config_set.t -> broken:Conftree.Config_set.t -> Redit.t list
(** The edit sequence turning [broken] back into [stock]: a parallel
    walk aligning children structurally, inverting each divergence into
    a {!Redit.t} (insert what was deleted, delete what was inserted,
    rename / re-value what was altered).  Empty when the sets already
    agree modulo attributes. *)

val candidates :
  ?nearest:Conferr_lint.Checker.nearest ->
  sut:Suts.Sut.t ->
  rules:Conferr_lint.Rule.t list ->
  stock:Conftree.Config_set.t ->
  broken:Conftree.Config_set.t ->
  unit ->
  candidate list
(** Every generated candidate, deduplicated by edit list, sorted by
    ascending {!Redit.total_cost} (generation order breaks ties — more
    specific generators first).  The caller appends cluster candidates
    ({!Cluster.candidates}) before validation. *)
