(** Repair edits: typed, path-addressed inversions of configuration
    faults (doc/repair.md).

    Where a fault scenario mutates a {!Conftree.Config_set.t} through an
    opaque closure, a repair edit is {e data}: which file, which
    {!Conftree.Path.t}, and one of five operations.  Keeping edits
    first-class lets the pipeline rank candidates by edit distance,
    render them in the report, and prove (property-tested) that applying
    a repair touches nothing outside the edits' sites. *)

type op =
  | Rename of string  (** give the node at the path this name *)
  | Set_value of string option  (** give the node at the path this value *)
  | Delete  (** remove the node at the path *)
  | Insert of { index : int; node : Conftree.Node.t }
      (** insert [node] under the {e parent} designated by the path, at
          child position [index] (clamped) *)
  | Restore_file of Conftree.Node.t
      (** replace the whole file tree (path must be the root) — the
          last-resort repair, ranked after every targeted edit *)

type t = { file : string; path : Conftree.Path.t; op : op }

val op_label : t -> string
(** ["rename"], ["set-value"], ["delete"], ["insert"],
    ["restore-file"]. *)

val site : t -> Conftree.Path.t
(** The ConfPath the edit touches: the node's path, or for [Insert] the
    position the new node lands on. *)

val describe : broken:Conftree.Config_set.t -> t -> string
(** One human-readable line, e.g.
    ["rename 'max_connektions' -> 'max_connections'"].  [broken] is the
    pre-repair set the edit addresses. *)

val cost : broken:Conftree.Config_set.t -> t -> int
(** Character-level edit distance from the broken configuration:
    Damerau-Levenshtein over the renamed name / replaced value, the
    rendered size of deleted and inserted subtrees, and for
    [Restore_file] the combined size of both trees (so whole-file
    restoration always ranks behind targeted edits). *)

val total_cost : broken:Conftree.Config_set.t -> t list -> int

val apply :
  Conftree.Config_set.t -> t list -> (Conftree.Config_set.t, string) result
(** Apply every edit.  Edits are applied in descending document order of
    their sites (deletes before inserts at equal sites), so earlier
    sites are never invalidated by index shifts; the result is
    independent of the list order given. *)
