(** The end-to-end repair pipeline (doc/repair.md):
    target → lint + boot → candidates → parallel validation → choice.

    A {e target} is one broken configuration: the files given to
    [conferr repair], or one journal entry's mutation re-applied to the
    stock configuration.  For each target the pipeline lints and boots
    the broken set, generates repair candidates ({!Generate},
    {!Cluster}), validates every candidate in the sandbox
    ({!Validate}), and picks the valid candidate with the smallest edit
    distance (generation order breaks ties).  Both parallel phases go
    through {!Conferr_pool.map}, so the whole result — and any report
    rendered from it — is byte-identical for any [jobs] value. *)

type status = Repaired | Already_clean | Unrepaired | Skipped

val status_label : status -> string
(** ["repaired"], ["already-clean"], ["unrepairable"], ["skipped"]. *)

type target = {
  tg_id : string;    (** scenario id, or a label for file targets *)
  tg_class : string; (** fault class; ["file"] for file targets *)
  tg_config : (Conftree.Config_set.t, string) result;
      (** the broken configuration; [Error] (inexpressible mutation,
          unmatched journal entry) becomes [Skipped] *)
  tg_outcome : Conferr.Outcome.t option;
      (** the recorded outcome, when replaying a journal — reused
          instead of re-booting the broken set *)
}

val file_target : id:string -> Conftree.Config_set.t -> target

val journal_targets :
  ?ids:string list ->
  scenarios:Errgen.Scenario.t list ->
  stock:Conftree.Config_set.t ->
  Conferr_exec.Journal.entry list ->
  target list
(** One target per journal entry (restricted to [ids] when non-empty):
    the entry's scenario — matched by id against the regenerated
    faultload — re-applied to the stock configuration.  Entries with no
    regenerated scenario become [Error] targets. *)

type edit_view = {
  e_file : string;
  e_path : string;  (** {!Conftree.Path.to_string} of the edit's site *)
  e_op : string;    (** {!Redit.op_label} *)
  e_text : string;  (** {!Redit.describe} against the broken set *)
}
(** A chosen edit rendered for reports, so consumers need not hold on
    to the broken configuration. *)

type repair = {
  r_id : string;
  r_class : string;
  r_status : status;
  r_detail : string;   (** skip reason / chosen-candidate description *)
  r_edits : edit_view list;  (** the applied edit sequence, if repaired *)
  r_findings : int;    (** lint findings at/above Warning before repair *)
  r_outcome : string;  (** outcome label of the broken configuration *)
  r_candidates : int;  (** candidates validated for this target *)
  r_chosen : Validate.verdict option;  (** the applied repair, if any *)
  r_matches_stock : bool;
      (** the repaired set equals the stock one modulo attributes *)
}

type result = {
  sut_name : string;
  repairs : repair list;  (** target order *)
  validated : int;        (** candidate validations across all targets *)
}

val run :
  ?jobs:int ->
  ?nearest:Conferr_lint.Checker.nearest ->
  ?specs:Conferr_lint.Rule_file.spec list ->
  ?max_candidates:int ->
  sut:Suts.Sut.t ->
  rules:Conferr_lint.Rule.t list ->
  stock:Conftree.Config_set.t ->
  target list ->
  result
(** [specs] are loaded mined rules ([--rules]) whose
    [F_implies_present] bodies seed extra {!Cluster} candidates;
    [max_candidates] (default 24) caps the candidates validated per
    target, cheapest first. *)

val counts : result -> int * int * int * int
(** [(repaired, already_clean, unrepaired, skipped)]. *)

val all_repaired : result -> bool
(** No [Unrepaired] target — the exit-0 condition (doc/exec.md). *)

val majority_repaired : result -> bool
(** Strictly more than half of the non-skipped targets ended
    [Repaired] or [Already_clean] — the acceptance bar on the paper
    faultloads. *)
