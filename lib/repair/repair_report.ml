module Json = Conferr_obsv.Json

let chosen_distance (r : Pipeline.repair) =
  match r.r_chosen with Some v -> v.Validate.distance | None -> 0

let render (result : Pipeline.result) =
  let b = Buffer.create 4096 in
  let repaired, clean, unrepaired, skipped = Pipeline.counts result in
  Buffer.add_string b
    (Printf.sprintf "conferr repair \xe2\x80\x94 %s: %d target(s)\n"
       result.sut_name
       (List.length result.repairs));
  List.iter
    (fun (r : Pipeline.repair) ->
      (match r.r_status with
      | Pipeline.Repaired ->
        Buffer.add_string b
          (Printf.sprintf "  %s [%s] repaired  distance %d%s\n" r.r_id
             r.r_class (chosen_distance r)
             (if r.r_matches_stock then "  matches stock" else ""));
        List.iter
          (fun (e : Pipeline.edit_view) ->
            Buffer.add_string b
              (Printf.sprintf "    %s at %s:%s\n" e.e_text e.e_file e.e_path))
          r.r_edits;
        (match r.r_chosen with
        | Some v when v.Validate.candidate.Generate.cluster <> [] ->
          Buffer.add_string b
            (Printf.sprintf "    cluster: {%s}\n"
               (String.concat ", " v.Validate.candidate.Generate.cluster))
        | _ -> ())
      | Pipeline.Already_clean ->
        Buffer.add_string b
          (Printf.sprintf "  %s [%s] already clean\n" r.r_id r.r_class)
      | Pipeline.Unrepaired ->
        Buffer.add_string b
          (Printf.sprintf "  %s [%s] unrepairable: %s (broken: %d finding(s), %s)\n"
             r.r_id r.r_class r.r_detail r.r_findings r.r_outcome)
      | Pipeline.Skipped ->
        Buffer.add_string b
          (Printf.sprintf "  %s [%s] skipped: %s\n" r.r_id r.r_class r.r_detail)))
    result.repairs;
  Buffer.add_string b
    (Printf.sprintf
       "%d repaired, %d already clean, %d unrepairable, %d skipped \
        (%d candidate validation(s))\n"
       repaired clean unrepaired skipped result.validated);
  Buffer.contents b

let json_of_repair (r : Pipeline.repair) =
  Json.Obj
    ([
       ("id", Json.Str r.r_id);
       ("class", Json.Str r.r_class);
       ("status", Json.Str (Pipeline.status_label r.r_status));
       ("detail", Json.Str r.r_detail);
       ("findings", Json.Num (float_of_int r.r_findings));
       ("outcome", Json.Str r.r_outcome);
       ("candidates", Json.Num (float_of_int r.r_candidates));
       ("matches_stock", Json.Bool r.r_matches_stock);
     ]
    @ (match r.r_chosen with
      | None -> []
      | Some v ->
        [
          ("distance", Json.Num (float_of_int v.Validate.distance));
          ( "origin",
            Json.Str v.Validate.candidate.Generate.origin );
          ( "cluster",
            Json.Arr
              (List.map
                 (fun n -> Json.Str n)
                 v.Validate.candidate.Generate.cluster) );
          ( "edits",
            Json.Arr
              (List.map
                 (fun (e : Pipeline.edit_view) ->
                   Json.Obj
                     [
                       ("file", Json.Str e.e_file);
                       ("path", Json.Str e.e_path);
                       ("op", Json.Str e.e_op);
                       ("description", Json.Str e.e_text);
                     ])
                 r.r_edits) );
        ]))

let to_json (result : Pipeline.result) =
  let repaired, clean, unrepaired, skipped = Pipeline.counts result in
  Json.Obj
    [
      ("sut", Json.Str result.sut_name);
      ("repaired", Json.Num (float_of_int repaired));
      ("already_clean", Json.Num (float_of_int clean));
      ("unrepairable", Json.Num (float_of_int unrepaired));
      ("skipped", Json.Num (float_of_int skipped));
      ("validated", Json.Num (float_of_int result.validated));
      ("repairs", Json.Arr (List.map json_of_repair result.repairs));
    ]

let record_metrics registry (result : Pipeline.result) =
  let sut = result.sut_name in
  List.iter
    (fun (r : Pipeline.repair) ->
      Conferr_obsv.Metrics.inc registry "conferr_repair_targets_total"
        ~labels:
          [ ("sut", sut); ("status", Pipeline.status_label r.r_status) ];
      List.iter
        (fun (e : Pipeline.edit_view) ->
          Conferr_obsv.Metrics.inc registry "conferr_repair_edits_total"
            ~labels:[ ("sut", sut); ("op", e.e_op) ])
        r.r_edits)
    result.repairs;
  let chosen =
    List.length
      (List.filter
         (fun (r : Pipeline.repair) -> r.r_chosen <> None)
         result.repairs)
  in
  Conferr_obsv.Metrics.inc registry ~by:(float_of_int chosen)
    "conferr_repair_candidates_total"
    ~labels:[ ("sut", sut); ("result", "chosen") ];
  Conferr_obsv.Metrics.inc registry
    ~by:(float_of_int (result.validated - chosen))
    "conferr_repair_candidates_total"
    ~labels:[ ("sut", sut); ("result", "rejected") ]

let dashboard_rows (result : Pipeline.result) =
  List.map
    (fun (r : Pipeline.repair) ->
      {
        Conferr_obsv.Report.rep_id = r.r_id;
        rep_class = r.r_class;
        rep_status = Pipeline.status_label r.r_status;
        rep_distance = chosen_distance r;
        rep_edits = List.length r.r_edits;
        rep_stock = r.r_matches_stock;
        rep_detail = r.r_detail;
      })
    result.repairs
