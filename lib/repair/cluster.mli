(** Multi-edit repair candidates from co-occurrence clusters
    (doc/repair.md).

    Ocasta's insight, applied in reverse: when a failure message
    implicates several directives at once ("max_fsm_pages must be at
    least 16 * max_fsm_relations"), repairing one of them in isolation
    usually leaves the joint invariant broken — the candidate must edit
    the whole cluster together.  The clusters themselves come from
    {!Conferr_infer.Cooccur}: the observed failure messages are wrapped
    as evidence rows (with the stock/broken tree diff as typed edit
    provenance) and mined exactly as [conferr infer] mines journals, so
    repair and inference agree on what "changes together".  Mined rule
    files ([conferr repair --rules]) contribute their
    [F_implies_present] name sets as additional clusters. *)

val candidates :
  ?specs:Conferr_lint.Rule_file.spec list ->
  stock:Conftree.Config_set.t ->
  broken:Conftree.Config_set.t ->
  messages:string list ->
  unit ->
  Generate.candidate list
(** Cluster candidates in first-appearance order: for every
    {!Conferr_infer.Cooccur} cluster mined from [messages] (failure
    messages observed on the broken configuration — lint findings and
    the SUT's own rejection) and every [F_implies_present] spec in
    [specs], one candidate restoring each clustered directive that
    diverges from stock.  Candidates that produce no edit (the cluster
    already matches stock) are dropped; [cluster] is the directive name
    set, so the report can attribute the repair to its cluster. *)
