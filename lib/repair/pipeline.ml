module Node = Conftree.Node
module Config_set = Conftree.Config_set
module Finding = Conferr_lint.Finding
module Outcome = Conferr.Outcome

type status = Repaired | Already_clean | Unrepaired | Skipped

let status_label = function
  | Repaired -> "repaired"
  | Already_clean -> "already-clean"
  | Unrepaired -> "unrepairable"
  | Skipped -> "skipped"

type target = {
  tg_id : string;
  tg_class : string;
  tg_config : (Config_set.t, string) result;
  tg_outcome : Outcome.t option;
}

let file_target ~id set =
  { tg_id = id; tg_class = "file"; tg_config = Ok set; tg_outcome = None }

let journal_targets ?(ids = []) ~scenarios ~stock entries =
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun (s : Errgen.Scenario.t) -> Hashtbl.replace by_id s.id s)
    scenarios;
  entries
  |> List.filter (fun (e : Conferr_exec.Journal.entry) ->
         ids = [] || List.mem e.scenario_id ids)
  |> List.map (fun (e : Conferr_exec.Journal.entry) ->
         let config =
           match Hashtbl.find_opt by_id e.scenario_id with
           | None ->
             Error
               (Printf.sprintf
                  "no scenario regenerated for id '%s' (seed mismatch?)"
                  e.scenario_id)
           | Some s -> s.Errgen.Scenario.apply stock
         in
         {
           tg_id = e.scenario_id;
           tg_class = e.class_name;
           tg_config = config;
           tg_outcome = Some e.outcome;
         })

type edit_view = {
  e_file : string;
  e_path : string;
  e_op : string;
  e_text : string;
}

type repair = {
  r_id : string;
  r_class : string;
  r_status : status;
  r_detail : string;
  r_edits : edit_view list;
  r_findings : int;
  r_outcome : string;
  r_candidates : int;
  r_chosen : Validate.verdict option;
  r_matches_stock : bool;
}

type result = {
  sut_name : string;
  repairs : repair list;
  validated : int;
}

let outcome_messages = function
  | Outcome.Startup_failure m -> [ m ]
  | Outcome.Test_failure ms -> ms
  | Outcome.Crashed c -> [ Outcome.crash_summary c ]
  | Outcome.Passed | Outcome.Not_applicable _ -> []

(* Per-target analysis: lint + boot the broken set, decide whether it
   needs repair, and if so generate the ranked candidate list. *)
type analysis =
  | A_skip of string
  | A_clean of { findings : int; outcome : string }
  | A_cands of {
      findings : int;
      outcome : string;
      candidates : Generate.candidate list;
    }

let analyze ~nearest ~specs ~max_candidates ~sut ~rules ~stock tg =
  match tg.tg_config with
  | Error msg -> A_skip msg
  | Ok broken ->
    let typed = Generate.typed_findings ~nearest ~rules broken in
    let warnings =
      List.filter
        (fun (_, (f : Finding.t)) ->
          Finding.at_least ~threshold:Finding.Warning f.severity)
        typed
    in
    let outcome =
      match tg.tg_outcome with
      | Some o -> o
      | None -> (
        match Conferr.Engine.serialize_config sut broken with
        | Error msg -> Outcome.Startup_failure msg
        | Ok files -> Conferr_harden.Sandbox.boot_and_test sut files)
    in
    let findings = List.length warnings in
    let outcome_label = Outcome.label outcome in
    if findings = 0 && outcome = Outcome.Passed then
      A_clean { findings; outcome = outcome_label }
    else begin
      let messages =
        List.map (fun (_, (f : Finding.t)) -> f.message) warnings
        @ outcome_messages outcome
      in
      let clusters =
        Cluster.candidates ~specs ~stock ~broken ~messages ()
      in
      let generated =
        Generate.candidates ~nearest ~sut ~rules ~stock ~broken ()
      in
      let all =
        (* clusters first so dedup attributes shared edit sets to them *)
        List.fold_left
          (fun acc (c : Generate.candidate) ->
            if List.exists (fun (c' : Generate.candidate) -> c'.edits = c.edits) acc
            then acc
            else c :: acc)
          [] (clusters @ generated)
        |> List.rev
        |> List.stable_sort (fun (a : Generate.candidate) b ->
               compare
                 (Redit.total_cost ~broken a.edits)
                 (Redit.total_cost ~broken b.edits))
        |> List.filteri (fun i _ -> i < max_candidates)
      in
      A_cands { findings; outcome = outcome_label; candidates = all }
    end

let equal_stock ~stock repaired =
  let ls = Config_set.to_list stock and lr = Config_set.to_list repaired in
  List.length ls = List.length lr
  && List.for_all
       (fun (file, st) ->
         match Config_set.find repaired file with
         | Some rt -> Node.equal_modulo_attrs st rt
         | None -> false)
       ls

let run ?(jobs = 1) ?(nearest = Generate.default_nearest) ?(specs = [])
    ?(max_candidates = 24) ~sut ~rules ~stock targets =
  let targets_a = Array.of_list targets in
  (* phase A: lint + boot each broken set, generate candidates *)
  let analyses =
    Conferr_pool.map ~jobs
      (fun _ tg -> analyze ~nearest ~specs ~max_candidates ~sut ~rules ~stock tg)
      targets_a
  in
  (* phase B: validate every (target, candidate) pair in one flat map *)
  let pairs =
    Array.to_list analyses
    |> List.mapi (fun i a ->
           match a with
           | A_cands { candidates; _ } -> List.map (fun c -> (i, c)) candidates
           | _ -> [])
    |> List.concat
  in
  let verdicts =
    Conferr_pool.map ~jobs
      (fun _ (i, cand) ->
        let broken =
          match targets_a.(i).tg_config with
          | Ok b -> b
          | Error _ -> assert false
        in
        (i, Validate.check ~nearest ~sut ~rules ~broken cand))
      (Array.of_list pairs)
  in
  (* phase C: per target, first valid candidate in rank order wins *)
  let per_target = Hashtbl.create (Array.length targets_a) in
  Array.iter
    (fun (i, v) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt per_target i) in
      Hashtbl.replace per_target i (v :: prev))
    verdicts;
  let repairs =
    Array.to_list
      (Array.mapi
         (fun i tg ->
           let base ?(edits = []) ~status ~detail ~findings ~outcome ~cands
               ~chosen ~stock_eq () =
             {
               r_id = tg.tg_id;
               r_class = tg.tg_class;
               r_status = status;
               r_detail = detail;
               r_edits = edits;
               r_findings = findings;
               r_outcome = outcome;
               r_candidates = cands;
               r_chosen = chosen;
               r_matches_stock = stock_eq;
             }
           in
           match analyses.(i) with
           | A_skip msg ->
             base ~status:Skipped ~detail:msg ~findings:0 ~outcome:"n/a"
               ~cands:0 ~chosen:None ~stock_eq:false ()
           | A_clean { findings; outcome } ->
             let stock_eq =
               match tg.tg_config with
               | Ok b -> equal_stock ~stock b
               | Error _ -> false
             in
             base ~status:Already_clean
               ~detail:"lints clean and passes the SUT's tests as-is"
               ~findings ~outcome ~cands:0 ~chosen:None ~stock_eq ()
           | A_cands { findings; outcome; candidates } ->
             let ranked =
               Option.value ~default:[] (Hashtbl.find_opt per_target i)
               |> List.rev
             in
             let chosen = List.find_opt Validate.ok ranked in
             (match chosen with
             | Some v ->
               let stock_eq =
                 match v.Validate.repaired with
                 | Some r -> equal_stock ~stock r
                 | None -> false
               in
               let broken =
                 match tg.tg_config with Ok b -> b | Error _ -> assert false
               in
               let edits =
                 List.map
                   (fun e ->
                     {
                       e_file = e.Redit.file;
                       e_path = Conftree.Path.to_string (Redit.site e);
                       e_op = Redit.op_label e;
                       e_text = Redit.describe ~broken e;
                     })
                   v.Validate.candidate.Generate.edits
               in
               base ~edits ~status:Repaired
                 ~detail:v.Validate.candidate.Generate.description
                 ~findings ~outcome ~cands:(List.length candidates)
                 ~chosen ~stock_eq ()
             | None ->
               base ~status:Unrepaired
                 ~detail:
                   (Printf.sprintf "%d candidate(s) failed validation"
                      (List.length candidates))
                 ~findings ~outcome ~cands:(List.length candidates)
                 ~chosen:None ~stock_eq:false ()))
         targets_a)
  in
  {
    sut_name = sut.Suts.Sut.sut_name;
    repairs;
    validated = Array.length verdicts;
  }

let counts result =
  let count s = List.length (List.filter (fun r -> r.r_status = s) result.repairs) in
  (count Repaired, count Already_clean, count Unrepaired, count Skipped)

let all_repaired result =
  List.for_all (fun r -> r.r_status <> Unrepaired) result.repairs

let majority_repaired result =
  let repaired, clean, unrepaired, _ = counts result in
  let considered = repaired + clean + unrepaired in
  considered > 0 && 2 * (repaired + clean) > considered
