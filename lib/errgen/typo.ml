module Node = Conftree.Node
module Strutil = Conferr_util.Strutil
module Rng = Conferr_util.Rng
module Layout = Keyboard.Layout

type kind = Omission | Insertion | Substitution | Case_alteration | Transposition

let all_kinds = [ Omission; Insertion; Substitution; Case_alteration; Transposition ]

let kind_name = function
  | Omission -> "omission"
  | Insertion -> "insertion"
  | Substitution -> "substitution"
  | Case_alteration -> "case-alteration"
  | Transposition -> "transposition"

let default_layout = Layout.us_qwerty

let dedup_variants word variants =
  let seen = Hashtbl.create 8 in
  Hashtbl.add seen word ();
  List.filter
    (fun (w, _) ->
      if Hashtbl.mem seen w then false
      else begin
        Hashtbl.add seen w ();
        true
      end)
    variants

let omission_variants word =
  List.init (String.length word) (fun i ->
      ( Strutil.delete_char word i,
        Printf.sprintf "omit %C at position %d" word.[i] i ))

let insertion_variants ?(include_doubling = false) layout word =
  (* The spurious character comes from a key adjacent to the character
     being typed when the slip happens (paper §4.1).  Same-key doubling
     is a realistic extension beyond the paper's model, available
     opt-in. *)
  List.concat
    (List.init (String.length word) (fun i ->
         let doubled =
           if include_doubling then
             [
               ( Strutil.insert_char word i word.[i],
                 Printf.sprintf "double %C at position %d" word.[i] i );
             ]
           else []
         in
         doubled
         @ (Layout.neighbors layout word.[i]
           |> List.concat_map (fun c ->
                  [
                    ( Strutil.insert_char word i c,
                      Printf.sprintf "insert %C before position %d" c i );
                    ( Strutil.insert_char word (i + 1) c,
                      Printf.sprintf "insert %C after position %d" c i );
                  ]))))

let substitution_variants layout word =
  List.concat
    (List.init (String.length word) (fun i ->
         Layout.neighbors layout word.[i]
         |> List.map (fun c ->
                ( Strutil.replace_char word i c,
                  Printf.sprintf "substitute %C for %C at position %d" c word.[i] i ))))

(* Ablation variant: substitutions drawn from the whole layout instead of
   the adjacent keys — what a keyboard-oblivious fuzzer would inject. *)
let uniform_substitution_variants layout word =
  let chars = Layout.all_chars layout in
  List.concat
    (List.init (String.length word) (fun i ->
         chars
         |> List.filter (fun c -> c <> word.[i])
         |> List.map (fun c ->
                ( Strutil.replace_char word i c,
                  Printf.sprintf "substitute %C for %C at position %d (uniform)" c
                    word.[i] i ))))

let case_alteration_variants layout word =
  List.concat
    (List.init (String.length word) (fun i ->
         let c = word.[i] in
         if
           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         then
           match Layout.shift_variant layout c with
           | Some flipped when flipped <> c ->
             [
               ( Strutil.replace_char word i flipped,
                 Printf.sprintf "flip case of %C at position %d" c i );
             ]
           | Some _ | None -> []
         else []))

let transposition_variants word =
  let n = String.length word in
  List.concat
    (List.init (max 0 (n - 1)) (fun i ->
         if word.[i] = word.[i + 1] then []
         else
           [
             ( Strutil.swap_chars word i,
               Printf.sprintf "transpose positions %d and %d" i (i + 1) );
           ]))

let uniform_substitutions ?(layout = default_layout) word =
  dedup_variants word (uniform_substitution_variants layout word)

let variants ?(layout = default_layout) ?(include_doubling = false) kind word =
  let raw =
    match kind with
    | Omission -> if String.length word <= 1 then [] else omission_variants word
    | Insertion -> insertion_variants ~include_doubling layout word
    | Substitution -> substitution_variants layout word
    | Case_alteration -> case_alteration_variants layout word
    | Transposition -> transposition_variants word
  in
  dedup_variants word raw

let random_variant ?(layout = default_layout) rng kind word =
  Rng.pick_opt rng (variants ~layout kind word)

let random_any ?(layout = default_layout) rng word =
  (* Uniform over the whole one-letter typo space: kinds with more
     concrete slips (substitutions, insertions) are proportionally more
     likely, as when drawing a random subset of typos (paper §4.1). *)
  let pool =
    List.concat_map
      (fun kind ->
        List.map
          (fun (w, d) -> (w, Printf.sprintf "%s: %s" (kind_name kind) d))
          (variants ~layout kind word))
      all_kinds
  in
  Rng.pick_opt rng pool

let random_kind_first ?(layout = default_layout) rng word =
  (* Uniform over kinds first, then over that kind's variants: each
     submodel is equally represented regardless of how many concrete
     slips it has (used by the §5.5 benchmark, which draws exactly one
     typo per experiment). *)
  let non_empty = List.filter (fun k -> variants ~layout k word <> []) all_kinds in
  match Rng.pick_opt rng non_empty with
  | None -> None
  | Some kind ->
    Option.map
      (fun (w, d) -> (w, Printf.sprintf "%s: %s" (kind_name kind) d))
      (random_variant ~layout rng kind word)

type part = Name | Value

let directive_only (n : Node.t) = n.kind = Node.kind_directive

let mutate_part layout ~class_suffix part make_variants (n : Node.t) =
  if not (directive_only n) then []
  else
    match part with
    | Name ->
      make_variants layout n.name
      |> List.map (fun (w, d) ->
             ({ n with Node.name = w }, Printf.sprintf "%s in name: %s" class_suffix d))
    | Value ->
      (match n.value with
       | None -> []
       | Some v ->
         make_variants layout v
         |> List.map (fun (w, d) ->
                ( { n with Node.value = Some w },
                  Printf.sprintf "%s in value: %s" class_suffix d )))

let scenarios ?(layout = default_layout) ~class_prefix ~part ~kinds tgt set =
  kinds
  |> List.concat_map (fun kind ->
         let class_name = Printf.sprintf "%s/%s" class_prefix (kind_name kind) in
         Template.modify ~class_name
           ~mutate:
             (mutate_part layout ~class_suffix:(kind_name kind) part
                (fun layout w -> variants ~layout kind w))
           tgt set)

(* The paper's two-stage pipeline (§3.2 / Figure 2.c): map the
   structural tree to the word-token view, mutate tokens there, and let
   the stored back-references rewrite the original tree.  Functionally
   equivalent to the direct path above — asserted by tests — but
   demonstrates the representation-mapping architecture end to end. *)
let wordview_scenarios ?(layout = default_layout) ~class_prefix ~word_type ~kinds ~file
    set =
  match Conftree.Config_set.find set file with
  | None -> []
  | Some tree ->
    let view = Wordview.of_tree tree in
    Wordview.words ~word_type view
    |> List.concat_map (fun (token_path, (token : Node.t)) ->
           let text = Node.value_or ~default:"" token in
           kinds
           |> List.concat_map (fun kind ->
                  variants ~layout kind text
                  |> List.map (fun (mutated, what) ->
                         Scenario.make ~id:""
                           ~class_name:
                             (Printf.sprintf "%s/%s" class_prefix (kind_name kind))
                           ~description:
                             (Printf.sprintf "%s: %s in %s token %S of %s"
                                (kind_name kind) what word_type text file)
                           (fun set ->
                             match Conftree.Config_set.find set file with
                             | None -> Error (Printf.sprintf "file %S missing" file)
                             | Some tree ->
                               let view = Wordview.of_tree tree in
                               (match
                                  Node.update view token_path (fun w ->
                                      { w with Node.value = Some mutated })
                                with
                                | None -> Error "word token vanished from the view"
                                | Some view' ->
                                  (match Wordview.apply_to_tree ~word_view:view' tree with
                                   | Error msg -> Error msg
                                   | Ok tree' ->
                                     Ok (Conftree.Config_set.add set file tree')))))))

let sampled_scenarios ?(layout = default_layout) ~rng ~per_target ~class_prefix ~part tgt
    set =
  let mutate (n : Node.t) =
    if not (directive_only n) then []
    else begin
      let word =
        match part with Name -> Some n.name | Value -> n.value
      in
      match word with
      | None -> []
      | Some w ->
        List.init per_target (fun _ -> random_any ~layout rng w)
        |> List.filter_map Fun.id
        |> List.map (fun (mutated, descr) ->
               let node =
                 match part with
                 | Name -> { n with Node.name = mutated }
                 | Value -> { n with Node.value = Some mutated }
               in
               (node, descr))
    end
  in
  Template.modify ~class_name:(Printf.sprintf "%s/sampled" class_prefix) ~mutate tgt set

(* Reverse mode (doc/repair.md): rank the vocabulary words a typo could
   have come from.  One-slip explanations (the forward model reproduces
   the word exactly) sort ahead of bare edit-distance neighbours. *)
let corrections ?(layout = default_layout) ?(max_distance = 2) ~vocabulary word =
  let one_slip w =
    List.exists
      (fun kind ->
        List.exists (fun (v, _) -> v = word) (variants ~layout kind w))
      all_kinds
  in
  vocabulary
  |> List.filter_map (fun w ->
         if w = word then None
         else
           let d = Conferr_util.Strutil.damerau_levenshtein w word in
           let slip = one_slip w in
           if slip || d <= max_distance then Some (w, d, slip) else None)
  |> List.sort (fun (a, da, sa) (b, db, sb) ->
         match (sa, sb) with
         | true, false -> -1
         | false, true -> 1
         | _ ->
           let c = compare da db in
           if c <> 0 then c else compare a b)
  |> List.map (fun (w, d, _) -> (w, d))
