(** Spelling-mistake error generator (paper §2.1 and §4.1).

    Five submodels of one-letter typos, each grounded in the
    typographical-error taxonomy of van Berkel & De Smedt:

    - omission: one character is missing
    - insertion: a spurious character appears, produced by a key adjacent
      to one of the word's characters
    - substitution: a character is replaced by one from an adjacent key
      pressed with the same modifiers
    - case alteration: the case of a letter flips (Shift miscoordination)
    - transposition: two adjacent characters swap

    Mutations are enumerated exhaustively ({!variants}) or sampled
    ({!random_variant}); the plugin entry points instantiate the abstract
    modify template over directive names or values. *)

type kind = Omission | Insertion | Substitution | Case_alteration | Transposition

val all_kinds : kind list

val kind_name : kind -> string

val variants :
  ?layout:Keyboard.Layout.t -> ?include_doubling:bool -> kind -> string ->
  (string * string) list
(** [variants kind word] enumerates every distinct one-letter typo of
    that kind, with a description each.  The original word is never among
    the results; the list is empty when the word is too short or the
    layout cannot produce the needed neighbours.  [include_doubling]
    (default false, beyond the paper's model) adds same-key doubling to
    the insertion submodel. *)

val random_variant :
  ?layout:Keyboard.Layout.t -> Conferr_util.Rng.t -> kind -> string ->
  (string * string) option
(** One uniformly-chosen variant of that kind, if any exists. *)

val random_any :
  ?layout:Keyboard.Layout.t -> Conferr_util.Rng.t -> string -> (string * string) option
(** One variant drawn uniformly from the union of all kinds' variants —
    kinds with more concrete slips are proportionally likelier, as when
    sampling the typo space itself. *)

val random_kind_first :
  ?layout:Keyboard.Layout.t -> Conferr_util.Rng.t -> string -> (string * string) option
(** One variant of a uniformly-chosen non-empty kind: every submodel is
    equally represented. *)

val uniform_substitutions :
  ?layout:Keyboard.Layout.t -> string -> (string * string) list
(** Ablation model: one-character substitutions drawn from the {e whole}
    layout rather than the adjacent keys — what a keyboard-oblivious
    fuzzer would inject.  Used to quantify how much the keyboard model
    changes resilience estimates. *)

(** {1 Plugin entry points} *)

type part = Name | Value

val scenarios :
  ?layout:Keyboard.Layout.t ->
  class_prefix:string ->
  part:part ->
  kinds:kind list ->
  Template.target ->
  Conftree.Config_set.t ->
  Scenario.t list
(** Exhaustive: every typo of the given kinds in the chosen part of every
    directive matched by the target.  Only directives are mutated; for
    [part = Value] only directives that have a value. *)

val wordview_scenarios :
  ?layout:Keyboard.Layout.t ->
  class_prefix:string ->
  word_type:string ->
  kinds:kind list ->
  file:string ->
  Conftree.Config_set.t ->
  Scenario.t list
(** The paper's two-stage pipeline (§3.2): exhaustive typos generated on
    the {!Wordview} token representation ([word_type] is
    ["directive-name"], ["directive-value"] or ["section-name"]) and
    mapped back through the stored references.  Equivalent to
    {!scenarios} on the corresponding part. *)

val sampled_scenarios :
  ?layout:Keyboard.Layout.t ->
  rng:Conferr_util.Rng.t ->
  per_target:int ->
  class_prefix:string ->
  part:part ->
  Template.target ->
  Conftree.Config_set.t ->
  Scenario.t list
(** The paper's §5.2 faultload shape: for each matched directive, draw
    [per_target] random typos (random kind, random position). *)

(** {1 Reverse mode (doc/repair.md)}

    Repair synthesis runs the typo model backwards: given a word the
    SUT's vocabulary does not know, which vocabulary words could a
    one-letter slip have produced it from? *)

val corrections :
  ?layout:Keyboard.Layout.t -> ?max_distance:int -> vocabulary:string list ->
  string -> (string * int) list
(** [corrections ~vocabulary word] ranks the vocabulary words [word]
    plausibly resulted from, closest first.  A vocabulary word whose
    forward typo model ({!variants}, any kind) produces [word] exactly
    is ranked by its true Damerau-Levenshtein distance but always ahead
    of words merely within [max_distance] (default 2) that no single
    modelled slip explains; ties break lexicographically.  [word]
    itself is never returned. *)
