module Rng = Conferr_util.Rng

type 'a t = { mutable pull : unit -> 'a option }

let exhausted () = None

let make f =
  let g = { pull = exhausted } in
  g.pull <-
    (fun () ->
      match f () with
      | Some _ as r -> r
      | None ->
        g.pull <- exhausted;
        None);
  g

let next g = g.pull ()

let of_list xs =
  let rest = ref xs in
  make (fun () ->
      match !rest with
      | [] -> None
      | x :: tl ->
        rest := tl;
        Some x)

let of_seq seq =
  let rest = ref seq in
  make (fun () ->
      match !rest () with
      | Seq.Nil -> None
      | Seq.Cons (x, tl) ->
        rest := tl;
        Some x)

let unfold step init =
  let state = ref (Some init) in
  make (fun () ->
      match !state with
      | None -> None
      | Some s ->
        (match step s with
         | None ->
           state := None;
           None
         | Some (x, s') ->
           state := Some s';
           Some x))

let seeded ~seed draw =
  let rng = Rng.create seed in
  make (fun () -> draw rng)

let map f g = make (fun () -> Option.map f (next g))

let filter p g =
  make (fun () ->
      let rec go () =
        match next g with
        | None -> None
        | Some x when p x -> Some x
        | Some _ -> go ()
      in
      go ())

let append a b =
  make (fun () ->
      match next a with
      | Some _ as r -> r
      | None -> next b)

let interleave gens =
  let q = Queue.create () in
  List.iter (fun g -> Queue.add g q) gens;
  make (fun () ->
      (* try each remaining stream once, dropping exhausted ones *)
      let rec go attempts =
        if attempts = 0 || Queue.is_empty q then None
        else
          let g = Queue.pop q in
          match next g with
          | Some x ->
            Queue.add g q;
            Some x
          | None -> go (attempts - 1)
      in
      go (Queue.length q))

let take n g =
  let rec go acc k =
    if k <= 0 then List.rev acc
    else
      match next g with
      | None -> List.rev acc
      | Some x -> go (x :: acc) (k - 1)
  in
  go [] n

(* After this many consecutive empty rounds the generator is assumed
   drained for good (guards an unbounded stream over a generator that
   yields nothing for this configuration). *)
let max_empty_rounds = 8

let of_generator ?rounds ~prefix ~seed generate set =
  let round = ref 0 in
  let pending = ref [] in
  let finished = ref false in
  let refill () =
    match rounds with
    | Some n when !round >= n -> finished := true
    | _ ->
      let r = !round in
      incr round;
      let rng =
        (* round 0 is byte-identical to the classic one-shot faultload
           for this seed; later rounds get independent derived seeds *)
        if r = 0 then Rng.create seed
        else Rng.create (Hashtbl.hash (seed, r, prefix))
      in
      let scenarios = generate ~rng set in
      pending :=
        if r = 0 then scenarios
        else
          Scenario.relabel_ids ~prefix:(Printf.sprintf "%s-r%d" prefix r)
            scenarios
  in
  make (fun () ->
      let rec go empty_rounds =
        match !pending with
        | x :: tl ->
          pending := tl;
          Some x
        | [] ->
          if !finished || empty_rounds >= max_empty_rounds then begin
            finished := true;
            None
          end
          else begin
            refill ();
            go (empty_rounds + 1)
          end
      in
      go 0)

let of_plugin ?rounds plugin ~seed set =
  of_generator ?rounds ~prefix:plugin.Plugin.name ~seed
    (fun ~rng set -> Plugin.generate plugin ~rng set)
    set
