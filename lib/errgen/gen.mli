(** Lazy, pull-based scenario streams.

    The paper's campaigns materialize their whole faultload up front
    (a [Scenario.t list]); that caps how many scenarios a campaign can
    even consider.  A ['a Gen.t] is the streaming alternative: scenarios
    are produced one pull at a time, so a faultload can be unbounded —
    the consumer (e.g. [Conferr_adapt.Explore]) decides when to stop.

    Streams are {e single-consumer}: pulling mutates the stream, and the
    combinators below take ownership of their arguments.  Determinism is
    preserved by construction — a stream built from a seed always yields
    the same elements in the same order, so campaigns over streams are
    as reproducible as campaigns over lists. *)

type 'a t

val make : (unit -> 'a option) -> 'a t
(** Wrap a pull function.  After the first [None] the stream is treated
    as exhausted: the function is not called again. *)

val next : 'a t -> 'a option
(** Pull the next element; [None] means exhausted (and stays [None]). *)

val of_list : 'a list -> 'a t

val of_seq : 'a Seq.t -> 'a t

val unfold : ('s -> ('a * 's) option) -> 's -> 'a t
(** Classic anamorphism: [unfold step init] yields elements while [step]
    returns [Some (x, next_state)]. *)

val seeded : seed:int -> (Conferr_util.Rng.t -> 'a option) -> 'a t
(** Unbounded seeded stream: one private RNG is created from [seed] and
    threaded through every pull.  The draw function returning [None]
    ends the stream. *)

val map : ('a -> 'b) -> 'a t -> 'b t

val filter : ('a -> bool) -> 'a t -> 'a t

val append : 'a t -> 'a t -> 'a t
(** Everything of the first stream, then everything of the second. *)

val interleave : 'a t list -> 'a t
(** Round-robin over the streams, dropping each as it exhausts — merges
    several error models into one fair stream. *)

val take : int -> 'a t -> 'a list
(** Pull at most [n] elements (fewer when the stream ends early). *)

val of_generator :
  ?rounds:int ->
  prefix:string ->
  seed:int ->
  (rng:Conferr_util.Rng.t -> Conftree.Config_set.t -> Scenario.t list) ->
  Conftree.Config_set.t ->
  Scenario.t t
(** Lift one of today's list generators (the typo campaign, a structural
    generator, an RFC-1912 closure, ...) into a stream.  Round 0 runs
    the generator with [Rng.create seed] and keeps its scenario ids
    verbatim, so the first round of the stream {e is} the classic
    faultload for that seed.  Later rounds (unbounded unless [rounds]
    caps them) re-run the generator with a fresh deterministic RNG
    derived from [(seed, round)] and re-prefix ids as
    ["<prefix>-r<round>-NNNN"] to keep them campaign-unique.  Each
    round's list is only generated when the previous one is drained —
    nothing is materialized up front beyond one round. *)

val of_plugin :
  ?rounds:int -> Plugin.t -> seed:int -> Conftree.Config_set.t -> Scenario.t t
(** [of_generator] over {!Plugin.generate}, prefixed with the plugin
    name. *)
