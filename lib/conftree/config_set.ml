type t = (string * Node.t) list

let empty = []

let add t name node =
  if List.mem_assoc name t then
    List.map (fun (n, v) -> if n = name then (n, node) else (n, v)) t
  else t @ [ (name, node) ]

let of_list bindings = List.fold_left (fun acc (n, v) -> add acc n v) empty bindings

let to_list t = t

let find t name = List.assoc_opt name t

let names t = List.map fst t

let update t name f =
  match List.assoc_opt name t with
  | None -> None
  | Some node ->
    (match f node with
     | None -> None
     | Some node' -> Some (add t name node'))

let map f t = List.map (fun (n, v) -> (n, f n v)) t

let fold_nodes f t acc =
  let rec go file path node acc =
    let acc = f file path node acc in
    let acc, _ =
      List.fold_left
        (fun (acc, i) child -> (go file (path @ [ i ]) child acc, i + 1))
        (acc, 0) node.Node.children
    in
    acc
  in
  List.fold_left (fun acc (file, root) -> go file [] root acc) acc t

(* Sites of [kind] nodes grouped by canonical name, document order
   within the set's file order.  [top_level] restricts to direct
   children of each file root — the scope where cross-file last-one-wins
   shadowing actually happens. *)
let cross_file_duplicates ?(top_level = true) ~kind ~canon t =
  let sites =
    fold_nodes
      (fun file path (n : Node.t) acc ->
        if n.kind = kind && (not top_level || List.length path = 1) then
          (canon n.name, (file, path)) :: acc
        else acc)
      t []
    |> List.rev
  in
  let names =
    List.fold_left
      (fun acc (name, _) -> if List.mem name acc then acc else name :: acc)
      [] sites
    |> List.rev
  in
  List.filter_map
    (fun name ->
      let occs = List.filter (fun (n, _) -> n = name) sites in
      let files = List.sort_uniq compare (List.map (fun (_, (f, _)) -> f) occs) in
      if List.length files >= 2 then Some (name, List.map snd occs) else None)
    names

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (n1, v1) (n2, v2) -> n1 = n2 && Node.equal v1 v2) a b

let cardinal = List.length
