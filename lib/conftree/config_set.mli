(** A named set of configuration trees.

    The SUT's configuration may span several files (the paper's example:
    [httpd.conf] and [ssl.conf] for Apache); fault scenarios mutate the
    whole set so cross-file errors can be expressed. *)

type t

val empty : t

val of_list : (string * Node.t) list -> t
(** Later bindings for the same file name replace earlier ones. *)

val to_list : t -> (string * Node.t) list
(** In insertion order. *)

val find : t -> string -> Node.t option

val names : t -> string list

val add : t -> string -> Node.t -> t
(** Adds or replaces the tree bound to the file name. *)

val update : t -> string -> (Node.t -> Node.t option) -> t option
(** [update t file f] rewrites one tree; [f] returning [None] or a
    missing [file] yields [None]. *)

val map : (string -> Node.t -> Node.t) -> t -> t

val fold_nodes : (string -> Path.t -> Node.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every node of every file: file order of the set, then
    document (pre-)order within each tree.  The substrate the
    cross-file analyses ([lib/lint]'s reference graph) walk. *)

val cross_file_duplicates :
  ?top_level:bool -> kind:string -> canon:(string -> string) -> t ->
  (string * (string * Path.t) list) list
(** Canonical names of [kind] nodes that appear in two or more distinct
    files of the set, with every site in document order — the cross-file
    shadowing a per-file scan cannot see.  [top_level] (default [true])
    restricts to direct children of each file root, where last-one-wins
    shadowing across files actually applies. *)

val equal : t -> t -> bool

val cardinal : t -> int
