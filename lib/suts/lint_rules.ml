module Rule = Conferr_lint.Rule
module Finding = Conferr_lint.Finding
module Node = Conftree.Node
module Config_set = Conftree.Config_set
module Strutil = Conferr_util.Strutil

let raw ?suggestion ~file ~path message =
  {
    Rule.raw_file = file;
    raw_path = path;
    raw_message = message;
    raw_suggestion = suggestion;
  }

(* ------------------------------------------------------------------ *)
(* PostgreSQL                                                           *)
(* ------------------------------------------------------------------ *)

let pg_file = "postgresql.conf"

(* The paper's stock postgresql.conf.  Deleting any of these reverts
   silently to the built-in default: the server's only silent gap. *)
let pg_stock =
  [
    "max_connections";
    "shared_buffers";
    "max_fsm_pages";
    "max_fsm_relations";
    "datestyle";
    "lc_messages";
    "log_timezone";
    "listen_addresses";
  ]

let pg_out_of_range name n lo hi =
  Printf.sprintf "%d is outside the valid range for parameter \"%s\" (%d .. %d)"
    n name lo hi

(* Exactly the server's own validation (Mini_pg.apply_directive), as a
   message-returning check. *)
let pg_check name (spec : Mini_pg.spec) v =
  match spec with
  | Pint { min; max; _ } -> (
    match Mini_pg.parse_strict_int name v with
    | Error m -> Some m
    | Ok n -> if n < min || n > max then Some (pg_out_of_range name n min max) else None)
  | Pmem { min_kb; max_kb; _ } -> (
    match Mini_pg.parse_mem name v with
    | Error m -> Some m
    | Ok n ->
      if n < min_kb || n > max_kb then Some (pg_out_of_range name n min_kb max_kb)
      else None)
  | Ptime { min_ms; max_ms; _ } -> (
    match Mini_pg.parse_time name v with
    | Error m -> Some m
    | Ok n ->
      if n < min_ms || n > max_ms then Some (pg_out_of_range name n min_ms max_ms)
      else None)
  | Pfloat { fmin; fmax; _ } -> (
    match Mini_pg.parse_float_strict name v with
    | Error m -> Some m
    | Ok f ->
      if f < fmin || f > fmax then
        Some
          (Printf.sprintf "%g is outside the valid range for parameter \"%s\"" f name)
      else None)
  | Pbool _ -> (
    match String.lowercase_ascii v with
    | "on" | "off" | "true" | "false" | "yes" | "no" | "1" | "0" -> None
    | _ -> Some (Printf.sprintf "parameter \"%s\" requires a Boolean value" name))
  | Penum _ when name = "datestyle" ->
    if Mini_pg.valid_datestyle v then None
    else Some (Printf.sprintf "invalid value for parameter \"datestyle\": \"%s\"" v)
  | Penum (allowed, _) ->
    if List.mem (String.lowercase_ascii v) allowed then None
    else Some (Printf.sprintf "invalid value for parameter \"%s\": \"%s\"" name v)
  | Pstring (validate, _) ->
    if validate v then None
    else Some (Printf.sprintf "invalid value for parameter \"%s\": \"%s\"" name v)

let pg_expect : Mini_pg.spec -> string = function
  | Pint { min; max; _ } -> Printf.sprintf "an integer in %d..%d" min max
  | Pmem _ -> "an amount with an exact kB/MB/GB unit (bare numbers are 8kB pages)"
  | Ptime _ -> "a duration with an ms/s/min/h/d unit (bare numbers are ms)"
  | Pfloat _ -> "a decimal number"
  | Pbool _ -> "a boolean word"
  | Penum _ -> "a known keyword list"
  | Pstring _ -> "a known value"

let pg_syntax =
  Rule.make ~id:"PG-SYNTAX" ~severity:Finding.Error
    ~doc:"a [section] header is not valid postgresql.conf syntax (agreement)"
    (Rule.Check_set
       (fun set ->
         match Config_set.find set pg_file with
         | None -> []
         | Some root ->
           List.concat
             (List.mapi
                (fun i (n : Node.t) ->
                  if
                    n.kind = Node.kind_directive
                    && String.length n.name > 0
                    && n.name.[0] = '['
                  then
                    [
                      raw ~file:pg_file ~path:[ i ]
                        (Printf.sprintf "syntax error in configuration near \"%s\""
                           n.name);
                    ]
                  else [])
                root.children)))

let pg_unknown =
  Rule.make ~id:"PG-UNKNOWN" ~severity:Finding.Error
    ~doc:"unknown parameter names abort startup with FATAL (agreement)"
    (Rule.Unknown
       {
         target = Rule.in_file pg_file;
         kind = Node.kind_directive;
         known =
           (fun n ->
             (* '['-headers are PG-SYNTAX's, not an unknown name *)
             (String.length n > 0 && n.[0] = '[')
             || List.mem_assoc (String.lowercase_ascii n) Mini_pg.specs);
         vocabulary = Vocabulary.postgres;
         what = "parameter";
       })

let pg_value_rules =
  List.map
    (fun (name, spec) ->
      Rule.make ~id:"PG-VALUE" ~severity:Finding.Error
        ~doc:(Printf.sprintf "'%s' takes %s (agreement)" name (pg_expect spec))
        (Rule.Value
           {
             target = Rule.in_file pg_file;
             name;
             canon = Rule.lower;
             vtype = Rule.Custom { expect = pg_expect spec; check = pg_check name spec };
             missing = pg_check name spec "";
           }))
    Mini_pg.specs

let pg_lookup_int lookup name default =
  match lookup name with
  | None -> default
  | Some v -> ( match Mini_pg.parse_strict_int name v with Ok n -> n | Error _ -> default)

let pg_cross_fsm =
  Rule.make ~id:"PG-CROSS" ~severity:Finding.Error
    ~doc:"max_fsm_pages must be at least 16 * max_fsm_relations (agreement)"
    (Rule.Implies
       {
         target = Rule.in_file pg_file;
         anchor = Some "max_fsm_pages";
         canon = Rule.lower;
         check =
           (fun ~lookup ->
             let pages = pg_lookup_int lookup "max_fsm_pages" 153600 in
             let relations = pg_lookup_int lookup "max_fsm_relations" 1000 in
             if pages < 16 * relations then
               Some
                 (Printf.sprintf
                    "max_fsm_pages must be at least 16 * max_fsm_relations (%d < 16 \
                     * %d)"
                    pages relations)
             else None);
       })

let pg_cross_shmem =
  Rule.make ~id:"PG-CROSS" ~severity:Finding.Error
    ~doc:"shared_buffers must cover max_connections bookkeeping (agreement)"
    (Rule.Implies
       {
         target = Rule.in_file pg_file;
         anchor = Some "shared_buffers";
         canon = Rule.lower;
         check =
           (fun ~lookup ->
             let shared_kb =
               match lookup "shared_buffers" with
               | None -> 24 * 1024
               | Some v -> (
                 match Mini_pg.parse_mem "shared_buffers" v with
                 | Ok n -> n
                 | Error _ -> 24 * 1024)
             in
             let conns = pg_lookup_int lookup "max_connections" 100 in
             if shared_kb < conns * 16 then
               Some
                 (Printf.sprintf
                    "insufficient shared memory for max_connections = %d \
                     (shared_buffers = %dkB)"
                    conns shared_kb)
             else None);
       })

let pg_required_rules =
  List.map
    (fun name ->
      Rule.make ~id:"PG-REQUIRED" ~severity:Finding.Warning
        ~doc:
          (Printf.sprintf
             "the stock configuration sets '%s'; deleting it silently reverts to \
              the built-in default (gap)"
             name)
        (Rule.Required
           { target = Rule.anywhere; file = pg_file; name; canon = Rule.lower }))
    pg_stock

let pg_dup =
  Rule.make ~id:"PG-DUP" ~severity:Finding.Warning
    ~doc:"a repeated parameter is silently last-one-wins (gap)"
    (Rule.No_duplicates
       { target = Rule.in_file pg_file; names = None; canon = Rule.lower })

let postgres =
  (pg_syntax :: pg_unknown :: pg_dup :: pg_cross_fsm :: pg_cross_shmem
 :: pg_value_rules)
  @ pg_required_rules

(* ------------------------------------------------------------------ *)
(* MySQL                                                                *)
(* ------------------------------------------------------------------ *)

let my_file = "my.cnf"

(* Sections some tool of the shipped install reads.  Matching is exact,
   like the server's own reader: [MySQLd] is a different — dead —
   section. *)
let my_sections = [ "mysqld"; "mysqldump"; "mysqld_safe"; "client"; "mysql"; "isamchk" ]

let my_safe_options = [ "log_error"; "pid_file"; "nice" ]

let ini_sections (root : Node.t) =
  List.mapi (fun i n -> (i, n)) root.children
  |> List.filter (fun (_, (n : Node.t)) -> n.kind = Node.kind_section)

let ini_directives (si, (s : Node.t)) =
  List.mapi (fun j d -> ([ si; j ], d)) s.children
  |> List.filter (fun (_, (d : Node.t)) -> d.kind = Node.kind_directive)

let my_section_directives set name =
  match Config_set.find set my_file with
  | None -> []
  | Some root ->
    ini_sections root
    |> List.filter (fun (_, (s : Node.t)) -> s.name = name)
    |> List.concat_map ini_directives

(* Shape analysis of a [mysqld] numeric value: what the quirky parsers
   (Mini_mysql.parse_size/parse_int) will do with it, with the silent
   cases told apart. *)
type my_shape =
  | Sh_ok
  | Sh_missing  (** no value: silently defaulted *)
  | Sh_silent of string  (** value present but entirely ignored *)
  | Sh_junk of string  (** value partially honored *)
  | Sh_bad of string  (** the daemon rejects it at startup *)

let my_is_digit c = c >= '0' && c <= '9'

let my_mult c =
  match Char.uppercase_ascii c with
  | 'K' -> Some 1024L
  | 'M' -> Some 1048576L
  | 'G' -> Some 1073741824L
  | _ -> None

let my_not_a_number v = Printf.sprintf "Wrong value: %S is not a number" v

let my_size_shape (b : Mini_mysql.bounds) v =
  let v = Strutil.trim v in
  if v = "" then Sh_missing
  else if my_mult v.[0] <> None then
    Sh_silent
      (Printf.sprintf
         "value '%s' starts with a multiplier; it is silently replaced by the \
          built-in default"
         v)
  else if not (my_is_digit v.[0]) then Sh_bad (my_not_a_number v)
  else begin
    let len = String.length v in
    let rec digits i = if i < len && my_is_digit v.[i] then digits (i + 1) else i in
    let stop = digits 0 in
    match Int64.of_string_opt (String.sub v 0 stop) with
    | None -> Sh_bad (my_not_a_number v)
    | Some n ->
      if stop = len then
        if n >= b.min && n <= b.max then Sh_ok
        else
          Sh_silent
            (Printf.sprintf
               "value %Ld is outside [%Ld, %Ld]; it is silently replaced by the \
                built-in default"
               n b.min b.max)
      else (
        match my_mult v.[stop] with
        | None -> Sh_bad (my_not_a_number v)
        | Some m ->
          let n = Int64.mul n m in
          if n < b.min || n > b.max then
            Sh_silent
              (Printf.sprintf
                 "value '%s' (%Ld) is outside [%Ld, %Ld]; it is silently replaced \
                  by the built-in default"
                 v n b.min b.max)
          else if stop + 1 < len then
            Sh_junk
              (Printf.sprintf
                 "text after the '%c' multiplier in '%s' is silently dropped \
                  (parsed as %Ld)"
                 v.[stop] v n)
          else Sh_ok)
  end

let my_int_shape (b : Mini_mysql.bounds) v =
  let v = Strutil.trim v in
  if v = "" then Sh_missing
  else if String.for_all my_is_digit v && String.length v <= 18 then begin
    let n = Int64.of_string v in
    if n >= b.min && n <= b.max then Sh_ok
    else
      Sh_silent
        (Printf.sprintf
           "value %Ld is outside [%Ld, %Ld]; it is silently replaced by the \
            built-in default"
           n b.min b.max)
  end
  else Sh_bad (my_not_a_number v)

(* Classify one [mysqld] directive.  [None] when the name does not
   resolve (MY-UNKNOWN's business). *)
let my_shape_of (d : Node.t) =
  match Mini_mysql.resolve_name d.name with
  | `Unknown | `Ambiguous -> None
  | `Known full ->
    let v = Option.value ~default:"" d.value in
    Some
      ( full,
        match List.assoc full Mini_mysql.mysqld_specs with
        | Size b -> my_size_shape b v
        | Int b -> my_int_shape b v
        | Flag ->
          if Strutil.trim v = "" then Sh_ok
          else
            Sh_junk
              (Printf.sprintf "'%s' takes no value; '%s' is silently ignored" full v)
        | Bool _ -> (
          match d.value with
          | None -> Sh_ok
          | Some v -> (
            match String.uppercase_ascii v with
            | "ON" | "TRUE" | "1" | "OFF" | "FALSE" | "0" -> Sh_ok
            | other ->
              Sh_bad (Printf.sprintf "invalid boolean value '%s' for %s" other full)))
        | Path_any _ -> (
          match d.value with
          | Some v when v <> "" && v.[0] <> '/' ->
            Sh_bad (Printf.sprintf "%s must be an absolute path, got '%s'" full v)
          | Some _ | None -> Sh_ok)
        | Path_existing _ -> Sh_ok (* MY-DATADIR's business *) )

let my_shape_rule ~id ~severity ~doc pick =
  Rule.make ~id ~severity ~doc
    (Rule.Check_set
       (fun set ->
         List.concat_map
           (fun (path, (d : Node.t)) ->
             match my_shape_of d with
             | Some (full, shape) -> (
               match pick full shape with
               | Some m -> [ raw ~file:my_file ~path m ]
               | None -> [])
             | None -> [])
           (my_section_directives set "mysqld")))

let my_orphan =
  Rule.make ~id:"MY-ORPHAN" ~severity:Finding.Error
    ~doc:"options must follow a [group] header (agreement)"
    (Rule.Check_set
       (fun set ->
         match Config_set.find set my_file with
         | None -> [ raw ~file:my_file ~path:[] "my.cnf not found" ]
         | Some root ->
           ini_sections root
           |> List.filter (fun (_, (s : Node.t)) -> s.name = "")
           |> List.concat_map ini_directives
           |> List.map (fun (path, (d : Node.t)) ->
                  raw ~file:my_file ~path
                    (Printf.sprintf
                       "Found option without preceding group in config file: %s"
                       d.name))))

let my_section =
  Rule.make ~id:"MY-SECTION" ~severity:Finding.Error
    ~doc:
      "an unrecognized [group] is never parsed by any tool; its options are \
       silently dead (gap)"
    (Rule.Unknown
       {
         target = Rule.in_file my_file;
         kind = Node.kind_section;
         known = (fun n -> n = "" || List.mem n my_sections);
         vocabulary = my_sections;
         what = "section";
       })

let my_unknown =
  Rule.make ~id:"MY-UNKNOWN" ~severity:Finding.Error
    ~doc:"unknown [mysqld] variables abort startup (agreement)"
    (Rule.Unknown
       {
         target = Rule.in_section ~file:my_file "mysqld";
         kind = Node.kind_directive;
         known =
           (fun n ->
             match Mini_mysql.resolve_name n with `Known _ -> true | _ -> false);
         vocabulary = Vocabulary.mysql;
         what = "variable";
       })

let my_prefix =
  Rule.make ~id:"MY-PREFIX" ~severity:Finding.Warning
    ~doc:
      "an unambiguous name prefix is accepted silently; it breaks when a new \
       variable makes it ambiguous (gap)"
    (Rule.Check_set
       (fun set ->
         List.concat_map
           (fun (path, (d : Node.t)) ->
             match Mini_mysql.resolve_name d.name with
             | `Known full when Mini_mysql.fold_dashes d.name <> full ->
               [
                 raw ~suggestion:full ~file:my_file ~path
                   (Printf.sprintf "abbreviated variable name '%s' resolves to '%s'"
                      d.name full);
               ]
             | _ -> [])
           (my_section_directives set "mysqld")))

let my_silent =
  my_shape_rule ~id:"MY-SILENT-DEFAULT" ~severity:Finding.Error
    ~doc:"an unusable numeric value is silently replaced by the default (gap)"
    (fun full shape ->
      match shape with
      | Sh_silent m -> Some (Printf.sprintf "%s: %s" full m)
      | _ -> None)

let my_junk =
  my_shape_rule ~id:"MY-VALUE-JUNK" ~severity:Finding.Warning
    ~doc:"trailing junk after a multiplier (or after a flag) is silently dropped (gap)"
    (fun full shape ->
      match shape with
      | Sh_junk m -> Some (Printf.sprintf "%s: %s" full m)
      | _ -> None)

let my_missing =
  my_shape_rule ~id:"MY-MISSING-VALUE" ~severity:Finding.Warning
    ~doc:"a numeric variable without a value is silently defaulted (gap)"
    (fun full shape ->
      match shape with
      | Sh_missing ->
        Some
          (Printf.sprintf "variable '%s' has no value; the built-in default is \
                           silently used" full)
      | _ -> None)

let my_bad =
  my_shape_rule ~id:"MY-BAD-VALUE" ~severity:Finding.Error
    ~doc:"a malformed value aborts startup (agreement)"
    (fun _full shape -> match shape with Sh_bad m -> Some m | _ -> None)

let my_datadir =
  Rule.make ~id:"MY-DATADIR" ~severity:Finding.Error
    ~doc:"datadir must name an existing directory (agreement)"
    (Rule.Reference
       {
         target = Rule.in_section ~file:my_file "mysqld";
         name = "datadir";
         canon = Mini_mysql.fold_dashes;
         what = "directory";
         exists = (fun v -> List.mem v Mini_mysql.existing_paths);
       })

let my_latent =
  Rule.make ~id:"MY-LATENT" ~severity:Finding.Error
    ~doc:
      "tool sections are parsed only when the tool runs, often from cron — \
       errors there are latent (gap)"
    (Rule.Check_set
       (fun set ->
         let dump =
           List.concat_map
             (fun (path, (d : Node.t)) ->
               let folded = Mini_mysql.fold_dashes d.name in
               if not (List.mem folded Mini_mysql.mysqldump_options) then
                 [
                   raw ~file:my_file ~path
                     (Printf.sprintf
                        "mysqldump: unknown option '--%s'; the tool will fail when \
                         it next runs"
                        d.name);
                 ]
               else if folded = "max_allowed_packet" then begin
                 let b =
                   { Mini_mysql.min = 1024L; max = 1073741824L; default = 16777216L }
                 in
                 match my_size_shape b (Option.value ~default:"" d.value) with
                 | Sh_bad m ->
                   [ raw ~file:my_file ~path (Printf.sprintf "mysqldump: %s" m) ]
                 | _ -> []
               end
               else [])
             (my_section_directives set "mysqldump")
         in
         let safe =
           List.concat_map
             (fun (path, (d : Node.t)) ->
               if not (List.mem (Mini_mysql.fold_dashes d.name) my_safe_options) then
                 [
                   raw ~file:my_file ~path
                     (Printf.sprintf
                        "mysqld_safe: unknown option '--%s'; the wrapper will fail \
                         when it next runs"
                        d.name);
                 ]
               else [])
             (my_section_directives set "mysqld_safe")
         in
         dump @ safe))

let my_dup =
  Rule.make ~id:"MY-DUP" ~severity:Finding.Warning
    ~doc:"a repeated variable is silently last-one-wins (gap)"
    (Rule.No_duplicates
       {
         target = Rule.in_section ~file:my_file "mysqld";
         names = None;
         canon = Mini_mysql.fold_dashes;
       })

let my_functional =
  Rule.make ~id:"MY-FUNCTIONAL" ~severity:Finding.Warning
    ~doc:"the diagnosis probe connects to port 3306; another port fails it (gap)"
    (Rule.Check_set
       (fun set ->
         List.concat_map
           (fun (path, (d : Node.t)) ->
             match my_shape_of d with
             | Some ("port", Sh_ok) -> (
               match Int64.of_string_opt (Strutil.trim (Option.value ~default:"" d.value)) with
               | Some p when p <> 3306L ->
                 [
                   raw ~file:my_file ~path
                     (Printf.sprintf
                        "the diagnosis probe connects to port 3306; port %Ld will \
                         fail it"
                        p);
                 ]
               | _ -> [])
             | _ -> [])
           (my_section_directives set "mysqld")))

let mysql =
  [
    my_orphan;
    my_section;
    my_unknown;
    my_prefix;
    my_silent;
    my_junk;
    my_missing;
    my_bad;
    my_datadir;
    my_latent;
    my_dup;
    my_functional;
  ]

(* ------------------------------------------------------------------ *)
(* Apache                                                               *)
(* ------------------------------------------------------------------ *)

(* httpd.conf first: boot concatenates httpd.conf then ssl.conf. *)
let ap_files set =
  List.filter (fun f -> List.mem f (Config_set.names set)) [ "httpd.conf"; "ssl.conf" ]

let ap_strip_quotes s =
  if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"' then
    String.sub s 1 (String.length s - 2)
  else s

let ap_fields s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun f -> f <> "")

let ap_port_of s =
  let port_text =
    match String.rindex_opt s ':' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  if port_text <> "" && String.for_all (fun c -> c >= '0' && c <= '9') port_text then begin
    let p = int_of_string port_text in
    if p >= 1 && p <= 65535 then Some p else None
  end
  else None

(* Everything one mirror pass over the configuration learns; the rules
   below each pick their slice. *)
type ap_scan = {
  mutable ap_loaded : string list;
  mutable ap_load_errors : Rule.raw list;  (* reversed *)
  mutable ap_errors : Rule.raw list;  (* reversed; startup-fatal *)
  mutable ap_skipped : Rule.raw list;  (* reversed; <IfModule> gaps *)
  mutable ap_listeners : int list;
  mutable ap_first_listen : (string * Conftree.Path.t) option;
  mutable ap_docroot : string;
  mutable ap_docroot_at : (string * Conftree.Path.t) option;
  mutable ap_vhost_roots : (int * string) list;
  mutable ap_dirindex : string list;
  mutable ap_dirindex_at : (string * Conftree.Path.t) option;
  mutable ap_have_httpd_conf : bool;
}

let ap_scan set =
  let sc =
    {
      ap_loaded = [];
      ap_load_errors = [];
      ap_errors = [];
      ap_skipped = [];
      ap_listeners = [];
      ap_first_listen = None;
      ap_docroot = "";
      ap_docroot_at = None;
      ap_vhost_roots = [];
      ap_dirindex = [];
      ap_dirindex_at = None;
      ap_have_httpd_conf = List.mem "httpd.conf" (Config_set.names set);
    }
  in
  if not sc.ap_have_httpd_conf then begin
    sc.ap_errors <- [ raw ~file:"httpd.conf" ~path:[] "httpd.conf not found" ];
    sc
  end
  else begin
    (* First pass, every file and every section (the server resolves
       LoadModule before interpreting the rest): collect loaded modules
       and bad LoadModule lines. *)
    List.iter
      (fun file ->
        match Config_set.find set file with
        | None -> ()
        | Some root ->
          let rec go base (children : Node.t list) =
            List.iteri
              (fun i (n : Node.t) ->
                let path = base @ [ i ] in
                if
                  n.kind = Node.kind_directive
                  && String.lowercase_ascii n.name = "loadmodule"
                then begin
                  let args = Node.value_or ~default:"" n in
                  match
                    Mini_apache.validate_directive ~loaded:[] "loadmodule" args
                  with
                  | Ok () -> (
                    match ap_fields args with
                    | [ name; _ ] -> sc.ap_loaded <- sc.ap_loaded @ [ name ]
                    | _ -> ())
                  | Error m -> sc.ap_load_errors <- raw ~file ~path m :: sc.ap_load_errors
                end
                else if n.kind = Node.kind_section then go path n.children)
              children
          in
          go [] root.children)
      (ap_files set);
    let loaded = sc.ap_loaded in
    let directive file path (n : Node.t) ~vhost_port =
      let lname = String.lowercase_ascii n.name in
      if lname = "loadmodule" then () (* first pass handled it *)
      else begin
        let args = Node.value_or ~default:"" n in
        match Mini_apache.validate_directive ~loaded n.name args with
        | Error m -> sc.ap_errors <- raw ~file ~path m :: sc.ap_errors
        | Ok () ->
          if lname = "listen" then begin
            (match ap_fields args with
            | [ spec ] -> (
              match ap_port_of spec with
              | Some p -> sc.ap_listeners <- sc.ap_listeners @ [ p ]
              | None -> ())
            | _ -> ());
            if sc.ap_first_listen = None then sc.ap_first_listen <- Some (file, path)
          end
          else if lname = "documentroot" then begin
            let root =
              ap_strip_quotes
                (Option.value ~default:"" (List.nth_opt (ap_fields args) 0))
            in
            match vhost_port with
            | None ->
              sc.ap_docroot <- root;
              sc.ap_docroot_at <- Some (file, path)
            | Some p -> sc.ap_vhost_roots <- (p, root) :: sc.ap_vhost_roots
          end
          else if lname = "directoryindex" then begin
            sc.ap_dirindex <- ap_fields args;
            sc.ap_dirindex_at <- Some (file, path)
          end
      end
    in
    let rec walk file base (children : Node.t list) ~vhost_port =
      List.iteri
        (fun i (n : Node.t) ->
          let path = base @ [ i ] in
          if n.kind = Node.kind_directive then directive file path n ~vhost_port
          else if n.kind = Node.kind_section then begin
            let lname = String.lowercase_ascii n.name in
            let arg = Option.value ~default:"" (Node.attr n "arg") in
            if not (List.mem lname Mini_apache.known_sections) then
              sc.ap_errors <-
                raw ~file ~path
                  (Printf.sprintf
                     "Invalid command '<%s', perhaps misspelled or defined by a \
                      module not included in the server configuration"
                     lname)
                :: sc.ap_errors
            else if lname = "ifmodule" then begin
              let mod_name, negated = Mini_apache.ifmodule_ref arg in
              if not (List.mem_assoc mod_name Mini_apache.modules) then
                sc.ap_skipped <-
                  raw ~file ~path
                    (Printf.sprintf
                       "<IfModule %s> tests an unknown module; its whole body is \
                        silently skipped"
                       (Strutil.trim arg))
                  :: sc.ap_skipped;
              let present = List.mem mod_name loaded in
              if (present && not negated) || ((not present) && negated) then
                walk file path n.children ~vhost_port
              (* else: body skipped entirely, exactly like the server *)
            end
            else if lname = "virtualhost" then begin
              match ap_port_of (Strutil.trim arg) with
              | Some p -> walk file path n.children ~vhost_port:(Some p)
              | None ->
                if Strutil.trim arg = "*" then
                  walk file path n.children ~vhost_port:(Some 80)
                else
                  sc.ap_errors <-
                    raw ~file ~path
                      (Printf.sprintf "VirtualHost: Invalid port in %S"
                         (Strutil.trim arg))
                    :: sc.ap_errors
            end
            else walk file path n.children ~vhost_port
          end)
        children
    in
    List.iter
      (fun file ->
        match Config_set.find set file with
        | None -> ()
        | Some root -> walk file [] root.children ~vhost_port:None)
      (ap_files set);
    sc
  end

let ap_conf =
  Rule.make ~id:"AP-CONF" ~severity:Finding.Error
    ~doc:
      "directives must be known, provided by a loaded module, and carry valid \
       values (agreement)"
    (Rule.Check_set
       (fun set ->
         let sc = ap_scan set in
         List.rev sc.ap_load_errors @ List.rev sc.ap_errors))

let ap_ifmodule =
  Rule.make ~id:"AP-IFMODULE" ~severity:Finding.Warning
    ~doc:
      "an <IfModule> naming an unknown module silently hides its whole body (gap)"
    (Rule.Check_set (fun set -> List.rev (ap_scan set).ap_skipped))

let ap_nolisten =
  Rule.make ~id:"AP-NOLISTEN" ~severity:Finding.Error
    ~doc:"without a valid Listen there are no listening sockets (agreement)"
    (Rule.Check_set
       (fun set ->
         let sc = ap_scan set in
         if sc.ap_have_httpd_conf && sc.ap_listeners = [] then
           [
             raw ~file:"httpd.conf" ~path:[]
               "no listening sockets available, shutting down";
           ]
         else []))

let ap_functional =
  Rule.make ~id:"AP-FUNCTIONAL" ~severity:Finding.Warning
    ~doc:
      "the HTTP probe GETs port 80 and expects /var/www/html with index.html \
       (gap: survives startup)"
    (Rule.Check_set
       (fun set ->
         let sc = ap_scan set in
         if not sc.ap_have_httpd_conf then []
         else begin
           let out = ref [] in
           let anchor fallback = Option.value ~default:("httpd.conf", []) fallback in
           if sc.ap_listeners <> [] && not (List.mem 80 sc.ap_listeners) then begin
             let file, path = anchor sc.ap_first_listen in
             out :=
               raw ~file ~path
                 (Printf.sprintf
                    "the HTTP probe connects to port 80; listening only on: %s"
                    (String.concat "," (List.map string_of_int sc.ap_listeners)))
               :: !out
           end;
           let root =
             match List.assoc_opt 80 sc.ap_vhost_roots with
             | Some r -> r
             | None -> sc.ap_docroot
           in
           if root <> "/var/www/html" then begin
             let file, path = anchor sc.ap_docroot_at in
             out :=
               raw ~file ~path
                 (Printf.sprintf
                    "404 predicted: DocumentRoot %S has no site content (the probe \
                     expects /var/www/html)"
                    root)
               :: !out
           end;
           if not (List.mem "index.html" sc.ap_dirindex) then begin
             let file, path = anchor sc.ap_dirindex_at in
             out :=
               raw ~file ~path
                 "403 predicted: DirectoryIndex does not map / to index.html"
               :: !out
           end;
           List.rev !out
         end))

let ap_hostname_ok h =
  let h = match String.index_opt h ':' with Some i -> String.sub h 0 i | None -> h in
  let label_ok l =
    l <> ""
    && l.[0] <> '-'
    && l.[String.length l - 1] <> '-'
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
           || c = '-')
         l
  in
  h <> "" && List.for_all label_ok (String.split_on_char '.' h)

let ap_mime_ok t =
  match String.index_opt t '/' with
  | Some i ->
    i > 0
    && i < String.length t - 1
    && not (String.contains_from t (i + 1) '/')
  | None -> false

let ap_value_rule ~id ~doc ~name check =
  Rule.make ~id ~severity:Finding.Warning ~doc
    (Rule.Value
       {
         target = Rule.anywhere;
         name;
         canon = Rule.lower;
         vtype = Rule.Custom { expect = doc; check };
         missing = None;
       })

let ap_servername =
  ap_value_rule ~id:"AP-SERVERNAME" ~name:"servername"
    ~doc:"ServerName should be a DNS host name; httpd accepts anything (gap)"
    (fun v ->
      match ap_fields v with
      | [ h ] when ap_hostname_ok h -> None
      | _ ->
        Some
          (Printf.sprintf
             "ServerName '%s' does not look like a DNS host name; httpd accepts it \
              unchecked"
             v))

let ap_serveradmin =
  ap_value_rule ~id:"AP-SERVERADMIN" ~name:"serveradmin"
    ~doc:"ServerAdmin should be an email address; httpd accepts anything (gap)"
    (fun v ->
      let ok =
        match String.index_opt v '@' with
        | Some i -> i > 0 && i < String.length v - 1 && not (String.contains v ' ')
        | None -> false
      in
      if ok then None
      else
        Some
          (Printf.sprintf
             "ServerAdmin '%s' is not an email address; httpd accepts it unchecked" v))

let ap_defaulttype =
  ap_value_rule ~id:"AP-MIME" ~name:"defaulttype"
    ~doc:"DefaultType should be an RFC 2045 type/subtype; httpd accepts anything (gap)"
    (fun v ->
      match ap_fields v with
      | [ t ] when ap_mime_ok t -> None
      | _ ->
        Some
          (Printf.sprintf
             "DefaultType '%s' is not a type/subtype MIME type; httpd accepts it \
              unchecked"
             v))

let ap_addtype =
  ap_value_rule ~id:"AP-MIME" ~name:"addtype"
    ~doc:
      "AddType's first argument should be an RFC 2045 type/subtype; httpd accepts \
       anything (gap)"
    (fun v ->
      match ap_fields v with
      | t :: _ :: _ when ap_mime_ok t -> None
      | t :: _ :: _ ->
        Some
          (Printf.sprintf
             "AddType '%s' is not a type/subtype MIME type; httpd accepts it \
              unchecked"
             t)
      | _ -> None (* argument count is AP-CONF's (Min_args) business *))

let ap_dup =
  Rule.make ~id:"AP-DUP" ~severity:Finding.Warning
    ~doc:"repeating a single-valued directive is silently last-one-wins (gap)"
    (Rule.No_duplicates
       {
         target = Rule.anywhere;
         names =
           Some
             [
               "servername";
               "serveradmin";
               "documentroot";
               "errorlog";
               "loglevel";
               "pidfile";
               "timeout";
               "keepalive";
               "keepalivetimeout";
               "maxclients";
               "user";
               "group";
               "defaulttype";
             ];
         canon = Rule.lower;
       })

let apache =
  [
    ap_conf;
    ap_nolisten;
    ap_ifmodule;
    ap_functional;
    ap_servername;
    ap_serveradmin;
    ap_defaulttype;
    ap_addtype;
    ap_dup;
  ]

(* ------------------------------------------------------------------ *)
(* BIND                                                                 *)
(* ------------------------------------------------------------------ *)

let bd_conf_file = "named.conf"

let bd_unquote v =
  let v = Strutil.trim v in
  if String.length v >= 2 && v.[0] = '"' && v.[String.length v - 1] = '"' then
    String.sub v 1 (String.length v - 2)
  else v

let bd_options_vocab =
  [ "directory"; "recursion"; "listen-on"; "allow-query"; "forwarders"; "version" ]

(* One walk over named.conf: configuration raws plus the declared zones
   with their anchors. *)
type bd_decl = {
  bd_file : string;
  bd_origin : string;
  bd_file_path : Conftree.Path.t;  (* the file directive, for anchoring *)
}

let bd_read set =
  match Config_set.find set bd_conf_file with
  | None -> ([ raw ~file:bd_conf_file ~path:[] "named.conf not found" ], [])
  | Some root ->
    let raws = ref [] in
    let decls = ref [] in
    let emit path m ?suggestion () =
      raws := raw ?suggestion ~file:bd_conf_file ~path m :: !raws
    in
    List.iteri
      (fun i (n : Node.t) ->
        if n.kind = Node.kind_section then
          match String.lowercase_ascii n.name with
          | "options" ->
            List.iteri
              (fun j (d : Node.t) ->
                if d.kind = Node.kind_directive then
                  match (String.lowercase_ascii d.name, d.value) with
                  | "directory", Some dir
                    when List.mem (bd_unquote dir) Mini_bind.existing_directories ->
                    ()
                  | "directory", Some dir ->
                    emit [ i; j ]
                      (Printf.sprintf "named.conf: directory %s not found" dir)
                      ()
                  | "recursion", Some ("yes" | "no") -> ()
                  | "recursion", Some other ->
                    emit [ i; j ]
                      (Printf.sprintf
                         "named.conf: recursion must be yes or no, got %s" other)
                      ()
                  | ("listen-on" | "allow-query" | "forwarders" | "version"), _ -> ()
                  | other, _ ->
                    emit [ i; j ]
                      (Printf.sprintf "named.conf: unknown option '%s'" other)
                      ())
              n.children
          | "zone" ->
            let origin =
              Dnsmodel.Name.normalize
                (Option.value ~default:"" (Node.attr n "arg"))
            in
            let find name =
              let rec go j = function
                | [] -> None
                | (d : Node.t) :: rest ->
                  if
                    d.kind = Node.kind_directive
                    && String.lowercase_ascii d.name = name
                  then Some (j, d)
                  else go (j + 1) rest
              in
              go 0 n.children
            in
            (match find "type" with
            | Some (_, d)
              when List.mem (Node.value_or ~default:"" d) Mini_bind.known_zone_types
              ->
              ()
            | Some (j, d) ->
              emit [ i; j ]
                (Printf.sprintf "zone %s: unknown type '%s'" origin
                   (Node.value_or ~default:"" d))
                ()
            | None ->
              emit [ i ] (Printf.sprintf "zone %s: missing 'type'" origin) ());
            (match find "file" with
            | Some (j, d) ->
              decls :=
                {
                  bd_file = bd_unquote (Node.value_or ~default:"" d);
                  bd_origin = origin;
                  bd_file_path = [ i; j ];
                }
                :: !decls
            | None ->
              emit [ i ] (Printf.sprintf "zone %s: missing 'file'" origin) ())
          | other ->
            emit [ i ]
              (Printf.sprintf "named.conf: unknown block '%s'" other)
              ?suggestion:
                (if List.mem other [ "option"; "zones"; "optons" ] then Some "options"
                 else None)
              ())
      root.children;
    (List.rev !raws, List.rev !decls)

let bd_conf =
  Rule.make ~id:"BD-CONF" ~severity:Finding.Error
    ~doc:"named.conf blocks, options and zone declarations are checked (agreement)"
    (Rule.Check_set (fun set -> fst (bd_read set)))

let bd_dangling =
  Rule.make ~id:"BD-FILE" ~severity:Finding.Error
    ~doc:"a declared zone file must exist (agreement)"
    (Rule.Check_set
       (fun set ->
         let _, decls = bd_read set in
         List.concat_map
           (fun d ->
             if not (List.mem d.bd_file (Config_set.names set)) then
               [
                 raw ~file:bd_conf_file ~path:d.bd_file_path
                   (Printf.sprintf
                      "zone %s: loading from master file %s failed: file not found"
                      d.bd_origin d.bd_file);
               ]
             else [])
           decls))

let bd_unused =
  Rule.make ~id:"BD-UNUSED" ~severity:Finding.Warning
    ~doc:"a zone file not declared in named.conf is never served (gap)"
    (Rule.Check_set
       (fun set ->
         let _, decls = bd_read set in
         let declared = List.map (fun d -> d.bd_file) decls in
         List.concat_map
           (fun f ->
             if f <> bd_conf_file && not (List.mem f declared) then
               [
                 raw ~file:f ~path:[]
                   (Printf.sprintf
                      "zone file '%s' is not declared in named.conf; its zone is \
                       not served"
                      f);
               ]
             else [])
           (Config_set.names set)))

(* Decode the declared-and-present zones into the abstract record model;
   [None] when nothing can be decoded or decoding fails (the failure
   itself is a BD-LOAD raw). *)
let bd_decode set =
  let _, decls = bd_read set in
  let present =
    List.filter (fun d -> List.mem d.bd_file (Config_set.names set)) decls
  in
  let zones = List.map (fun d -> (d.bd_file, d.bd_origin)) present in
  if zones = [] then (present, Error [])
  else begin
    let subset =
      Config_set.of_list
        (List.filter_map
           (fun (f, _) ->
             Option.map (fun t -> (f, t)) (Config_set.find set f))
           zones)
    in
    match (Dnsmodel.Codec.bind ~zones).Dnsmodel.Codec.decode subset with
    | Error msg ->
      ( present,
        Error
          [
            raw ~file:(List.hd (List.map fst zones)) ~path:[]
              (Printf.sprintf "dns_master_load: %s" msg);
          ] )
    | Ok records -> (present, Ok records)
  end

let bd_load =
  Rule.make ~id:"BD-LOAD" ~severity:Finding.Error
    ~doc:"zone files must decode into DNS records (agreement)"
    (Rule.Check_set
       (fun set ->
         match bd_decode set with _, Error raws -> raws | _, Ok _ -> []))

(* Anchor a finding on the record node for (owner, rtype) in the zone
   file where the record came from. *)
let bd_record_path set ~file ~origin ~owner ~rtype =
  match Config_set.find set file with
  | None -> (bd_conf_file, [])
  | Some tree ->
    let want = Dnsmodel.Name.normalize ~origin owner in
    let found = ref None in
    List.iteri
      (fun i (n : Node.t) ->
        if !found = None && n.kind = Node.kind_record then begin
          let n_owner =
            Dnsmodel.Name.normalize ~origin
              (Option.value ~default:n.name (Node.attr n "owner"))
          in
          let n_type =
            String.uppercase_ascii (Option.value ~default:"" (Node.attr n "type"))
          in
          if n_owner = want && n_type = rtype then found := Some [ i ]
        end)
      tree.children;
    (file, Option.value ~default:[] !found)

let bd_with_records f =
  Rule.Check_set
    (fun set ->
      match bd_decode set with
      | _, Error _ -> []
      | decls, Ok records -> f set decls records)

let bd_file_of (r : Dnsmodel.Record.t) decls =
  match Dnsmodel.Record.tag r Dnsmodel.Codec.tag_file with
  | Some f -> f
  | None -> ( match decls with d :: _ -> d.bd_file | [] -> bd_conf_file)

let bd_origin_of (r : Dnsmodel.Record.t) decls =
  match
    List.find_opt
      (fun d -> Dnsmodel.Name.in_domain ~domain:d.bd_origin r.owner)
      decls
  with
  | Some d -> d.bd_origin
  | None -> "."

let bd_anchor set decls (r : Dnsmodel.Record.t) =
  bd_record_path set ~file:(bd_file_of r decls) ~origin:(bd_origin_of r decls)
    ~owner:r.owner ~rtype:(Dnsmodel.Record.rtype r)

let bd_zone_checks =
  Rule.make ~id:"BD-ZONE" ~severity:Finding.Error
    ~doc:"the consistency checks BIND runs at zone load (agreement)"
    (bd_with_records
       (fun set decls records ->
         List.concat_map
           (fun d ->
             let zone =
               Dnsmodel.Zone.make ~origin:d.bd_origin
                 (List.filter
                    (fun r ->
                      Dnsmodel.Record.tag r Dnsmodel.Codec.tag_file
                      = Some d.bd_file)
                    records)
             in
             List.map
               (fun problem ->
                 let message =
                   Format.asprintf "zone %s: %a: not loaded due to errors"
                     d.bd_origin Dnsmodel.Zone.pp_problem problem
                 in
                 let file, path =
                   match problem with
                   | Dnsmodel.Zone.Cname_and_other_data name ->
                     bd_record_path set ~file:d.bd_file ~origin:d.bd_origin
                       ~owner:name ~rtype:"CNAME"
                   | Dnsmodel.Zone.Mx_target_is_alias (owner, _) ->
                     bd_record_path set ~file:d.bd_file ~origin:d.bd_origin
                       ~owner ~rtype:"MX"
                   | Dnsmodel.Zone.Ns_target_is_alias (owner, _) ->
                     bd_record_path set ~file:d.bd_file ~origin:d.bd_origin
                       ~owner ~rtype:"NS"
                   | Dnsmodel.Zone.Missing_soa -> (d.bd_file, [])
                 in
                 raw ~file ~path message)
               (Dnsmodel.Zone.validate zone))
           decls))

let bd_soa_at_apex =
  Rule.make ~id:"BD-SOA" ~severity:Finding.Warning
    ~doc:
      "the SOA must sit at the zone apex; BIND only checks that one exists \
       somewhere (gap)"
    (bd_with_records
       (fun set decls records ->
         List.concat_map
           (fun d ->
             let in_zone =
               List.filter
                 (fun (r : Dnsmodel.Record.t) ->
                   Dnsmodel.Record.tag r Dnsmodel.Codec.tag_file = Some d.bd_file)
                 records
             in
             let soas =
               List.filter
                 (fun r -> Dnsmodel.Record.rtype r = "SOA")
                 in_zone
             in
             (* no SOA at all is BD-ZONE's Missing_soa *)
             if
               soas <> []
               && not
                    (List.exists
                       (fun (r : Dnsmodel.Record.t) -> r.owner = d.bd_origin)
                       soas)
             then
               List.map
                 (fun (r : Dnsmodel.Record.t) ->
                   let file, path =
                     bd_record_path set ~file:d.bd_file ~origin:d.bd_origin
                       ~owner:r.owner ~rtype:"SOA"
                   in
                   raw ~file ~path
                     (Printf.sprintf
                        "zone %s: SOA is at %s, not at the apex; queries for the \
                         zone apex will fail"
                        d.bd_origin r.owner))
                 soas
             else [])
           decls))

let bd_is_reverse origin = Dnsmodel.Name.in_domain ~domain:"in-addr.arpa." origin

let bd_ptr_missing =
  Rule.make ~id:"BD-PTR-MISSING" ~severity:Finding.Error
    ~doc:
      "every address should have a PTR in the declared reverse zone; BIND never \
       cross-checks (gap)"
    (bd_with_records
       (fun set decls records ->
         let reverse_declared = List.exists (fun d -> bd_is_reverse d.bd_origin) decls in
         if not reverse_declared then []
         else
           List.concat_map
             (fun (r : Dnsmodel.Record.t) ->
               match r.rdata with
               | Dnsmodel.Record.A ip -> (
                 match Dnsmodel.Name.reverse_of_ipv4 ip with
                 | None -> []
                 | Some rev ->
                   let covered =
                     List.exists
                       (fun d ->
                         bd_is_reverse d.bd_origin
                         && Dnsmodel.Name.in_domain ~domain:d.bd_origin rev)
                       decls
                   in
                   let has_ptr =
                     List.exists
                       (fun (p : Dnsmodel.Record.t) ->
                         p.owner = rev && Dnsmodel.Record.rtype p = "PTR")
                       records
                   in
                   if covered && not has_ptr then begin
                     let file, path = bd_anchor set decls r in
                     [
                       raw ~file ~path
                         (Printf.sprintf
                            "missing PTR: no %s record for %s (%s); reverse lookup \
                             will fail"
                            "PTR" r.owner ip);
                     ]
                   end
                   else [])
               | _ -> [])
             records))

let bd_ptr_alias =
  Rule.make ~id:"BD-PTR-ALIAS" ~severity:Finding.Error
    ~doc:"a PTR should point at a canonical name, not a CNAME; BIND never checks (gap)"
    (bd_with_records
       (fun set decls records ->
         List.concat_map
           (fun (p : Dnsmodel.Record.t) ->
             match p.rdata with
             | Dnsmodel.Record.Ptr target ->
               let target = Dnsmodel.Name.normalize target in
               if
                 List.exists
                   (fun (c : Dnsmodel.Record.t) ->
                     c.owner = target && Dnsmodel.Record.rtype c = "CNAME")
                   records
               then begin
                 let file, path = bd_anchor set decls p in
                 [
                   raw ~file ~path
                     (Printf.sprintf
                        "PTR target %s is an alias (CNAME), not a canonical name"
                        target);
                 ]
               end
               else []
             | _ -> [])
           records))

let bd_ptr_nofwd =
  Rule.make ~id:"BD-PTR-NOFWD" ~severity:Finding.Warning
    ~doc:"a PTR target should own an address record; BIND never checks (gap)"
    (bd_with_records
       (fun set decls records ->
         List.concat_map
           (fun (p : Dnsmodel.Record.t) ->
             match p.rdata with
             | Dnsmodel.Record.Ptr target ->
               let target = Dnsmodel.Name.normalize target in
               let owns rtype =
                 List.exists
                   (fun (r : Dnsmodel.Record.t) ->
                     r.owner = target && Dnsmodel.Record.rtype r = rtype)
                   records
               in
               (* the alias case is BD-PTR-ALIAS's *)
               if owns "A" || owns "CNAME" then []
               else begin
                 let file, path = bd_anchor set decls p in
                 [
                   raw ~file ~path
                     (Printf.sprintf "PTR %s points at %s, which has no address \
                                      record" p.owner target);
                 ]
               end
             | _ -> [])
           records))

let bd_cname_chain =
  Rule.make ~id:"BD-CNAME-CHAIN" ~severity:Finding.Warning
    ~doc:"a CNAME chaining to another CNAME is slow and fragile; BIND loads it (gap)"
    (bd_with_records
       (fun set decls records ->
         List.concat_map
           (fun (c : Dnsmodel.Record.t) ->
             match c.rdata with
             | Dnsmodel.Record.Cname target ->
               let target = Dnsmodel.Name.normalize target in
               if
                 List.exists
                   (fun (r : Dnsmodel.Record.t) ->
                     r.owner = target && Dnsmodel.Record.rtype r = "CNAME")
                   records
               then begin
                 let file, path = bd_anchor set decls c in
                 [
                   raw ~file ~path
                     (Printf.sprintf "CNAME chain: %s points at %s, itself an alias"
                        c.owner target);
                 ]
               end
               else []
             | _ -> [])
           records))

let bind =
  [
    bd_conf;
    bd_dangling;
    bd_unused;
    bd_load;
    bd_zone_checks;
    bd_soa_at_apex;
    bd_ptr_missing;
    bd_ptr_alias;
    bd_ptr_nofwd;
    bd_cname_chain;
  ]

let _ = bd_options_vocab (* documented in doc/lint.md; kept for tooling *)

(* ------------------------------------------------------------------ *)
(* djbdns                                                               *)
(* ------------------------------------------------------------------ *)

let dj_file = Mini_djbdns.data_file

let dj_decode set =
  match Config_set.find set dj_file with
  | None -> Error [ raw ~file:dj_file ~path:[] "data file not found" ]
  | Some tree -> (
    let codec = Dnsmodel.Codec.tinydns ~file:dj_file in
    match codec.Dnsmodel.Codec.decode (Config_set.of_list [ (dj_file, tree) ]) with
    | Error msg ->
      Error [ raw ~file:dj_file ~path:[] (Printf.sprintf "tinydns-data: %s" msg) ]
    | Ok records -> Ok records)

(* Anchor on the data line whose name field resolves to [owner]. *)
let dj_path set ~owner =
  match Config_set.find set dj_file with
  | None -> []
  | Some tree ->
    let found = ref None in
    List.iteri
      (fun i (n : Node.t) ->
        if
          !found = None
          && n.kind = Node.kind_record
          && Dnsmodel.Name.normalize n.name = owner
        then found := Some [ i ])
      tree.children;
    Option.value ~default:[] !found

let dj_with_records f =
  Rule.Check_set
    (fun set -> match dj_decode set with Error _ -> [] | Ok records -> f set records)

let dj_data =
  Rule.make ~id:"DJ-DATA" ~severity:Finding.Error
    ~doc:"tinydns-data compiles the file: operator and field syntax (agreement)"
    (Rule.Check_set
       (fun set -> match dj_decode set with Error raws -> raws | Ok _ -> []))

let dj_owns records owner rtype =
  List.exists
    (fun (r : Dnsmodel.Record.t) -> r.owner = owner && Dnsmodel.Record.rtype r = rtype)
    records

let dj_collision =
  Rule.make ~id:"DJ-COLLISION" ~severity:Finding.Error
    ~doc:
      "a name owning a CNAME and other data violates RFC 1034; tinydns publishes \
       it without a word (gap)"
    (dj_with_records
       (fun set records ->
         let seen = ref [] in
         List.concat_map
           (fun (c : Dnsmodel.Record.t) ->
             match c.rdata with
             | Dnsmodel.Record.Cname _ ->
               if List.mem c.owner !seen then []
               else begin
                 seen := c.owner :: !seen;
                 let other =
                   List.exists
                     (fun (r : Dnsmodel.Record.t) ->
                       r.owner = c.owner && Dnsmodel.Record.rtype r <> "CNAME")
                     records
                 in
                 if other then
                   [
                     raw ~file:dj_file ~path:(dj_path set ~owner:c.owner)
                       (Printf.sprintf
                          "%s owns a CNAME and other data (RFC 1034 §3.6.2); \
                           tinydns publishes both"
                          c.owner);
                   ]
                 else []
               end
             | _ -> [])
           records))

let dj_alias_target ~what records set (r : Dnsmodel.Record.t) target =
  let target = Dnsmodel.Name.normalize target in
  if dj_owns records target "CNAME" then
    [
      raw ~file:dj_file ~path:(dj_path set ~owner:r.owner)
        (Printf.sprintf "%s target %s of %s is an alias (CNAME); tinydns never \
                         checks" what target r.owner);
    ]
  else []

let dj_alias =
  Rule.make ~id:"DJ-ALIAS" ~severity:Finding.Error
    ~doc:"NS and MX targets must be canonical names; tinydns never checks (gap)"
    (dj_with_records
       (fun set records ->
         List.concat_map
           (fun (r : Dnsmodel.Record.t) ->
             match r.rdata with
             | Dnsmodel.Record.Ns t -> dj_alias_target ~what:"NS" records set r t
             | Dnsmodel.Record.Mx (_, t) -> dj_alias_target ~what:"MX" records set r t
             | _ -> [])
           records))

let dj_chain =
  Rule.make ~id:"DJ-CHAIN" ~severity:Finding.Warning
    ~doc:"CNAME chains resolve slowly or not at all; tinydns never checks (gap)"
    (dj_with_records
       (fun set records ->
         List.concat_map
           (fun (c : Dnsmodel.Record.t) ->
             match c.rdata with
             | Dnsmodel.Record.Cname t ->
               let t = Dnsmodel.Name.normalize t in
               if dj_owns records t "CNAME" then
                 [
                   raw ~file:dj_file ~path:(dj_path set ~owner:c.owner)
                     (Printf.sprintf "CNAME chain: %s points at %s, itself an alias"
                        c.owner t);
                 ]
               else []
             | _ -> [])
           records))

let dj_nosoa =
  Rule.make ~id:"DJ-NOSOA" ~severity:Finding.Warning
    ~doc:
      "a record under no SOA apex is served non-authoritatively; tinydns-data \
       compiles it without a word (gap)"
    (dj_with_records
       (fun set records ->
         let apexes =
           List.filter_map
             (fun (r : Dnsmodel.Record.t) ->
               if Dnsmodel.Record.rtype r = "SOA" then Some r.owner else None)
             records
         in
         let seen = ref [] in
         List.concat_map
           (fun (r : Dnsmodel.Record.t) ->
             let covered =
               List.exists
                 (fun apex -> Dnsmodel.Name.in_domain ~domain:apex r.owner)
                 apexes
             in
             if covered || List.mem r.owner !seen then []
             else begin
               seen := r.owner :: !seen;
               [
                 raw ~file:dj_file ~path:(dj_path set ~owner:r.owner)
                   (Printf.sprintf
                      "%s is under no SOA apex; tinydns serves it \
                       non-authoritatively"
                      r.owner);
               ]
             end)
           records))

let djbdns = [ dj_data; dj_collision; dj_alias; dj_chain; dj_nosoa ]

(* ------------------------------------------------------------------ *)
(* Application server                                                   *)
(* ------------------------------------------------------------------ *)

let as_file = "server.xml"

let as_element =
  Rule.make ~id:"AS-ELEMENT" ~severity:Finding.Error
    ~doc:
      "an element the server does not know is silently skipped, subtree and all \
       (gap)"
    (Rule.Unknown
       {
         target = Rule.in_file as_file;
         kind = Node.kind_element;
         known = (fun n -> List.mem (String.lowercase_ascii n) Mini_appserver.known_elements);
         vocabulary = Mini_appserver.known_elements;
         what = "element";
       })

let as_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

type as_scan = {
  mutable as_attr_errors : Rule.raw list;  (* reversed *)
  mutable as_ports : int list;
  mutable as_first_connector : Conftree.Path.t option;
  mutable as_app_base : string;
  mutable as_default_app : string;
  mutable as_host_at : Conftree.Path.t option;
  mutable as_have_file : bool;
}

let as_run set =
  let sc =
    {
      as_attr_errors = [];
      as_ports = [];
      as_first_connector = None;
      as_app_base = "";
      as_default_app = "";
      as_host_at = None;
      as_have_file = true;
    }
  in
  (match Config_set.find set as_file with
  | None ->
    sc.as_have_file <- false;
    sc.as_attr_errors <- [ raw ~file:as_file ~path:[] "server.xml not found" ]
  | Some root ->
    let err path fmt = Printf.ksprintf (fun m -> sc.as_attr_errors <- raw ~file:as_file ~path m :: sc.as_attr_errors) fmt in
    let check_attrs ~element ~allowed path (n : Node.t) =
      List.iter
        (fun (key, _) ->
          if not (List.mem key allowed) then
            err path "element <%s> has no attribute %S" element key)
        n.attrs
    in
    let port_of path (n : Node.t) =
      match Node.attr n "port" with
      | None -> None
      | Some p when as_digits p ->
        let port = int_of_string p in
        if port >= 1 && port <= 65535 then Some port
        else begin
          err path "port %d out of range" port;
          None
        end
      | Some p ->
        err path "invalid port %S" p;
        None
    in
    let rec go base (children : Node.t list) =
      List.iteri
        (fun i (n : Node.t) ->
          let path = base @ [ i ] in
          if n.kind = Node.kind_element then
            match String.lowercase_ascii n.name with
            | "server" ->
              check_attrs ~element:"server" ~allowed:[ "shutdownPort"; "name" ] path n;
              go path n.children
            | "connector" ->
              check_attrs ~element:"connector"
                ~allowed:[ "protocol"; "port"; "timeout" ] path n;
              (match Node.attr n "protocol" with
              | None | Some "http" | Some "https" | Some "ajp" -> ()
              | Some other -> err path "unknown connector protocol %S" other);
              (match Node.attr n "timeout" with
              | None -> ()
              | Some t when as_digits t -> ()
              | Some t -> err path "invalid connector timeout %S" t);
              if sc.as_first_connector = None then sc.as_first_connector <- Some path;
              (match port_of path n with
              | Some p -> sc.as_ports <- sc.as_ports @ [ p ]
              | None -> ())
            | "logger" ->
              check_attrs ~element:"logger" ~allowed:[ "level"; "file" ] path n;
              (match Node.attr n "level" with
              | None | Some "debug" | Some "info" | Some "warn" | Some "error" -> ()
              | Some other -> err path "unknown log level %S" other);
              (match Node.attr n "file" with
              | None -> ()
              | Some f ->
                let dir =
                  match String.rindex_opt f '/' with
                  | Some 0 -> "/"
                  | Some i -> String.sub f 0 i
                  | None -> "."
                in
                if not (List.mem dir Mini_appserver.existing_dirs) then
                  err path "cannot open log file %S" f)
            | "host" ->
              check_attrs ~element:"host" ~allowed:[ "name"; "appBase"; "defaultApp" ]
                path n;
              sc.as_host_at <- Some path;
              (match Node.attr n "appBase" with
              | Some base -> sc.as_app_base <- base
              | None -> ());
              (match Node.attr n "defaultApp" with
              | Some app -> sc.as_default_app <- app
              | None -> ());
              go path n.children
            | "realm" -> (
              check_attrs ~element:"realm" ~allowed:[ "users" ] path n;
              match Node.attr n "users" with
              | None -> ()
              | Some f when List.mem f Mini_appserver.existing_files -> ()
              | Some f -> err path "realm user database %S not found" f)
            | _ -> () (* unknown element: silently skipped; AS-ELEMENT's *))
        children
    in
    go [] root.children);
  sc

let as_attr =
  Rule.make ~id:"AS-ATTR" ~severity:Finding.Error
    ~doc:"attributes of known elements are strictly validated (agreement)"
    (Rule.Check_set (fun set -> List.rev (as_run set).as_attr_errors))

let as_noconn =
  Rule.make ~id:"AS-NOCONN" ~severity:Finding.Error
    ~doc:"at least one connector must be configured (agreement)"
    (Rule.Check_set
       (fun set ->
         let sc = as_run set in
         if sc.as_have_file && sc.as_ports = [] then
           [ raw ~file:as_file ~path:[] "no connectors configured" ]
         else []))

let as_functional =
  Rule.make ~id:"AS-FUNCTIONAL" ~severity:Finding.Warning
    ~doc:
      "the HTTP probe GETs port 8080 and expects appBase /srv/webapps with a \
       default application (gap: survives startup)"
    (Rule.Check_set
       (fun set ->
         let sc = as_run set in
         if not sc.as_have_file then []
         else begin
           let out = ref [] in
           let emit path m = out := raw ~file:as_file ~path m :: !out in
           if sc.as_ports <> [] && not (List.mem 8080 sc.as_ports) then
             emit
               (Option.value ~default:[] sc.as_first_connector)
               (Printf.sprintf
                  "the HTTP probe connects to port 8080; connectors listen on: %s"
                  (String.concat "," (List.map string_of_int sc.as_ports)));
           let host = Option.value ~default:[] sc.as_host_at in
           if sc.as_app_base <> "/srv/webapps" then
             emit host
               (Printf.sprintf
                  "404 predicted: appBase %S has no applications (the probe expects \
                   /srv/webapps)"
                  sc.as_app_base);
           if sc.as_default_app = "" then
             emit host "404 predicted: no default application deployed";
           List.rev !out
         end))

let appserver = [ as_element; as_attr; as_noconn; as_functional ]

(* ------------------------------------------------------------------ *)

let all =
  [
    ("postgres", postgres);
    ("mysql", mysql);
    ("apache", apache);
    ("bind", bind);
    ("djbdns", djbdns);
    ("appserver", appserver);
  ]

let for_sut name = List.assoc_opt name all

(* Distinct rule ids of a set, first-appearance order.  Several rules
   share one id (PG-VALUE is one rule per parameter spec, PG-REQUIRED
   one per stock directive); the id is the unit the inference differ
   and the acceptance tests count recovery over. *)
let ids rules =
  List.rev
    (List.fold_left
       (fun acc (r : Conferr_lint.Rule.t) ->
         if List.mem r.id acc then acc else r.id :: acc)
       [] rules)
