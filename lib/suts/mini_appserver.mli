(** Simulated XML-configured application server (Tomcat-style).

    The paper lists generic XML files among the input formats ConfErr
    handles; this SUT exercises that path end-to-end.  Its configuration
    behaviour models the failure mode typical of XML-configured servers:

    - {e unknown elements are silently skipped} — a typo in an element
      name removes the whole subtree from consideration without any
      diagnostic (the XML analogue of MySQL's silent defaults)
    - attributes of {e known} elements are strictly validated: unknown
      attribute names, malformed ports, unknown protocols or log levels
      abort startup
    - a well-formedness error (broken tag) aborts startup
    - the functional test performs an HTTP GET against the connector
      port, so a numeric port typo survives startup and fails the
      diagnosis, like Apache's [Listen] *)

val sut : Sut.t

val known_elements : string list

(** {1 Exposed for the static rule set ({!Lint_rules.appserver})} *)

val existing_dirs : string list
val existing_files : string list
