(** Simulated ISC BIND 9.4 name server.

    Behaviours reproduced (paper §5.4 and Table 3):

    - each record is written separately in master zone files, so every
      RFC-1912 fault is expressible (unlike tinydns-data)
    - zone-load consistency checks: a CNAME colliding with other data at
      the same name, or an MX/NS target that is an alias, make the zone
      refuse to load with an explanatory message (errors 3 and 4
      "found"); a zone without SOA is refused
    - no check relates forward and reverse zones: a missing PTR or a PTR
      pointing at an alias loads fine (errors 1 and 2 "not found") *)

val sut : Sut.t

val forward_zone_file : string
val reverse_zone_file : string
val forward_origin : string
val reverse_origin : string

val zones : (string * string) list
(** [(file, origin)] pairs, as needed by {!Dnsmodel.Codec.bind}. *)

(** {1 Exposed for the static rule set ({!Lint_rules.bind})} *)

val existing_directories : string list
(** Directories the simulated host has; [options { directory ... }] must
    name one of them. *)

val known_zone_types : string list
