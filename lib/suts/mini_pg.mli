(** Simulated PostgreSQL 8.2 server.

    Behaviours reproduced (paper §5.2 and Table 2):

    - every parameter is typed and strictly validated: unknown names,
      malformed values and out-of-range values all abort startup with a
      FATAL message
    - cross-parameter constraints are enforced; in particular
      [max_fsm_pages >= 16 * max_fsm_relations] (the paper's example)
    - parameter names are case-insensitive, truncated names are rejected
    - the file is one flat section; values may be single-quoted
    - memory and time parameters require a {e complete} unit suffix —
      trailing junk after the unit is an error (contrast with
      mini-MySQL's stop-at-first-multiplier flaw) *)

val sut : Sut.t

val full_config : string
(** A configuration with most available directives set to their default
    values — the §5.5 comparison benchmark's starting file (booleans and
    defaultless parameters excluded, as in the paper). *)

(** {1 Exposed for white-box unit tests} *)

val validate_text : string -> (unit, string) result
(** Run only the configuration validation phase of [boot]. *)

(** {1 Exposed for the static rule set ({!Lint_rules.postgres})} *)

type spec =
  | Pint of { min : int; max : int; default : int }
  | Pmem of { min_kb : int; max_kb : int; default_kb : int }
  | Ptime of { min_ms : int; max_ms : int; default_ms : int }
  | Pfloat of { fmin : float; fmax : float; fdefault : float }
  | Pbool of bool
  | Penum of string list * string
  | Pstring of (string -> bool) * string

val specs : (string * spec) list
(** Parameter name (lowercase) to validation spec; the first eight are
    the paper's default postgresql.conf. *)

val parse_mem : string -> string -> (int, string) result
(** [parse_mem name v] is the kB amount, or the server's error message.
    Bare numbers are 8kB pages; units must be exactly kB/MB/GB. *)

val parse_time : string -> string -> (int, string) result
(** Milliseconds; units ms/s/min/h/d, bare numbers are ms. *)

val parse_strict_int : string -> string -> (int, string) result
val parse_float_strict : string -> string -> (float, string) result

val valid_datestyle : string -> bool
(** Comma-separated list of known datestyle tokens. *)
