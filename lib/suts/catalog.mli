(** The registry of built-in simulated SUTs.

    One authoritative list of every simulator plus the name aliases the
    docs and Makefile use ([mini_pg], [httpd], [tinydns]…), shared by
    the CLI front end and the campaign daemon (doc/serve.md) so both
    resolve ["--sut mini_pg"] identically. *)

val all : Sut.t list
(** Every built-in SUT, in the paper's presentation order. *)

val aliases : (string * string) list
(** [alias -> canonical sut_name], lowercase. *)

val find : string -> Sut.t option
(** Resolve a canonical name or alias, case-insensitively. *)

val names : string list
(** Canonical names of {!all}, for error messages. *)
