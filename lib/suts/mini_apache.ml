module Strutil = Conferr_util.Strutil

(* ------------------------------------------------------------------ *)
(* Module registry: module identifier -> canonical shared-object path   *)
(* ------------------------------------------------------------------ *)

let modules =
  [
    ("authz_host_module", "modules/mod_authz_host.so");
    ("auth_basic_module", "modules/mod_auth_basic.so");
    ("authn_file_module", "modules/mod_authn_file.so");
    ("include_module", "modules/mod_include.so");
    ("log_config_module", "modules/mod_log_config.so");
    ("env_module", "modules/mod_env.so");
    ("expires_module", "modules/mod_expires.so");
    ("headers_module", "modules/mod_headers.so");
    ("setenvif_module", "modules/mod_setenvif.so");
    ("mime_module", "modules/mod_mime.so");
    ("status_module", "modules/mod_status.so");
    ("autoindex_module", "modules/mod_autoindex.so");
    ("info_module", "modules/mod_info.so");
    ("dir_module", "modules/mod_dir.so");
    ("alias_module", "modules/mod_alias.so");
    ("rewrite_module", "modules/mod_rewrite.so");
    ("negotiation_module", "modules/mod_negotiation.so");
    ("userdir_module", "modules/mod_userdir.so");
    ("actions_module", "modules/mod_actions.so");
    ("speling_module", "modules/mod_speling.so");
    ("vhost_alias_module", "modules/mod_vhost_alias.so");
    ("deflate_module", "modules/mod_deflate.so");
    ("cgi_module", "modules/mod_cgi.so");
    ("dav_module", "modules/mod_dav.so");
    ("dav_fs_module", "modules/mod_dav_fs.so");
    ("proxy_module", "modules/mod_proxy.so");
    ("proxy_http_module", "modules/mod_proxy_http.so");
    ("ssl_module", "modules/mod_ssl.so");
    ("cache_module", "modules/mod_cache.so");
    ("disk_cache_module", "modules/mod_disk_cache.so");
  ]

let known_module name = List.mem_assoc name modules

(* Which module provides each non-core directive. *)
let directive_modules =
  [
    ("order", "authz_host_module");
    ("allow", "authz_host_module");
    ("deny", "authz_host_module");
    ("authtype", "auth_basic_module");
    ("authname", "auth_basic_module");
    ("authuserfile", "authn_file_module");
    ("customlog", "log_config_module");
    ("logformat", "log_config_module");
    ("setenv", "env_module");
    ("expiresactive", "expires_module");
    ("header", "headers_module");
    ("setenvif", "setenvif_module");
    ("browsermatch", "setenvif_module");
    ("addtype", "mime_module");
    ("addencoding", "mime_module");
    ("addhandler", "mime_module");
    ("typesconfig", "mime_module");
    ("extendedstatus", "status_module");
    ("indexoptions", "autoindex_module");
    ("addicon", "autoindex_module");
    ("addiconbytype", "autoindex_module");
    ("defaulticon", "autoindex_module");
    ("readmename", "autoindex_module");
    ("headername", "autoindex_module");
    ("addinfo", "info_module");
    ("directoryindex", "dir_module");
    ("alias", "alias_module");
    ("scriptalias", "alias_module");
    ("redirect", "alias_module");
    ("rewriteengine", "rewrite_module");
    ("rewriterule", "rewrite_module");
    ("languagepriority", "negotiation_module");
    ("addlanguage", "negotiation_module");
    ("forcelanguagepriority", "negotiation_module");
    ("userdir", "userdir_module");
    ("action", "actions_module");
    ("checkspelling", "speling_module");
    ("deflatecompressionlevel", "deflate_module");
    ("scriptsock", "cgi_module");
    ("davlockdb", "dav_fs_module");
    ("proxyrequests", "proxy_module");
    ("sslengine", "ssl_module");
    ("sslcertificatefile", "ssl_module");
    ("cacheenable", "cache_module");
    ("cacheroot", "disk_cache_module");
  ]

let directive_module name =
  List.assoc_opt (String.lowercase_ascii name) directive_modules

(* Core directives: name -> value validator.  Most accept anything —
   the laxity the paper criticizes. *)

let existing_dirs =
  [ "/etc/httpd"; "/var/www/html"; "/var/www/cgi-bin"; "/var/www/error";
    "/var/www/icons"; "/var/log/httpd"; "/var/run"; "/home" ]

let existing_files = [ "/etc/mime.types"; "/etc/httpd/conf/magic" ]

let known_users = [ "apache"; "www-data"; "daemon"; "nobody" ]

let known_groups = known_users

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let parse_port s =
  (* "80" or "1.2.3.4:80" or "[::]:80" *)
  let port_text =
    match String.rindex_opt s ':' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  if is_digits port_text then
    let p = int_of_string port_text in
    if p >= 1 && p <= 65535 then Ok p
    else Error (Printf.sprintf "port %d is out of range" p)
  else Error (Printf.sprintf "Invalid port in %S" s)

let dir_of_path p =
  match String.rindex_opt p '/' with
  | Some 0 -> "/"
  | Some i -> String.sub p 0 i
  | None -> "."

type validator =
  | Anything                 (* the flaw: freeform strings accepted *)
  | Number
  | On_off
  | On_off_or of string list
  | Enum of string list
  | Port_list
  | Existing_dir
  | Log_path                 (* parent directory must exist; '|' pipes ok *)
  | Existing_file
  | User_name
  | Group_name
  | Options_list
  | Override_list
  | Order_arg
  | From_list
  | Min_args of int

let core_directives =
  [
    ("serverroot", Existing_dir);
    ("listen", Port_list);
    ("user", User_name);
    ("group", Group_name);
    ("serveradmin", Anything) (* flaw: should be a URL or email address *);
    ("servername", Anything) (* flaw: should be a DNS host name *);
    ("usecanonicalname", On_off_or [ "dns" ]);
    ("documentroot", Anything) (* checked at request time, not startup *);
    ("errorlog", Log_path);
    ("loglevel", Enum [ "debug"; "info"; "notice"; "warn"; "error"; "crit"; "alert"; "emerg" ]);
    ("pidfile", Log_path);
    ("timeout", Number);
    ("keepalive", On_off);
    ("maxkeepaliverequests", Number);
    ("keepalivetimeout", Number);
    ("startservers", Number);
    ("minspareservers", Number);
    ("maxspareservers", Number);
    ("serverlimit", Number);
    ("maxclients", Number);
    ("maxrequestsperchild", Number);
    ("defaulttype", Anything) (* flaw: should be type/subtype per RFC 2045 *);
    ("hostnamelookups", On_off_or [ "double" ]);
    ("servertokens", Enum [ "prod"; "major"; "minor"; "min"; "os"; "full" ]);
    ("serversignature", On_off_or [ "email" ]);
    ("adddefaultcharset", Anything);
    ("enablemmap", On_off);
    ("enablesendfile", On_off);
    ("accessfilename", Anything);
    ("namevirtualhost", Port_list);
    ("options", Options_list);
    ("allowoverride", Override_list);
    ("errordocument", Min_args 2);
    ("include", Existing_file);
    ("traceenable", On_off_or [ "extended" ]);
  ]

let option_tokens =
  [ "indexes"; "includes"; "followsymlinks"; "symlinksifownermatch"; "execcgi";
    "multiviews"; "none"; "all" ]

let override_tokens =
  [ "authconfig"; "fileinfo"; "indexes"; "limit"; "options"; "none"; "all" ]

(* Directives owned by loadable modules still need their values checked
   once the module is present. *)
let module_directive_validators =
  [
    ("order", Order_arg);
    ("allow", From_list);
    ("deny", From_list);
    ("customlog", Min_args 2);
    ("logformat", Min_args 1);
    ("addtype", Min_args 2) (* flaw: the type itself is not validated *);
    ("addencoding", Min_args 2);
    ("addhandler", Min_args 2);
    ("typesconfig", Existing_file);
    ("extendedstatus", On_off);
    ("directoryindex", Min_args 1);
    ("alias", Min_args 2);
    ("scriptalias", Min_args 2);
    ("redirect", Min_args 1);
    ("rewriteengine", On_off);
    ("languagepriority", Min_args 1);
    ("addlanguage", Min_args 2);
    ("forcelanguagepriority", Min_args 1);
    ("userdir", Min_args 1);
    ("setenvif", Min_args 2);
    ("browsermatch", Min_args 2);
    ("setenv", Min_args 1);
    ("indexoptions", Min_args 1);
    ("addicon", Min_args 2);
    ("addiconbytype", Min_args 2);
    ("defaulticon", Min_args 1);
    ("readmename", Min_args 1);
    ("headername", Min_args 1);
  ]

let fields s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun f -> f <> "")

type state = {
  mutable listeners : int list;
  mutable document_root : string;
  mutable loaded : string list;    (* module identifiers *)
  mutable directory_index : string list;
  mutable vhost_roots : (int * string) list;
}

let strip_quotes s =
  if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"' then
    String.sub s 1 (String.length s - 2)
  else s

let validate_value state name validator value =
  let args = fields value in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match validator with
  | Anything -> Ok ()
  | Number ->
    (match args with
     | [ v ] when is_digits v -> Ok ()
     | _ -> fail "%s takes one numeric argument" name)
  | On_off ->
    (match List.map String.lowercase_ascii args with
     | [ "on" ] | [ "off" ] -> Ok ()
     | _ -> fail "%s must be On or Off" name)
  | On_off_or extra ->
    (match List.map String.lowercase_ascii args with
     | [ v ] when v = "on" || v = "off" || List.mem v extra -> Ok ()
     | _ -> fail "%s must be On, Off%s" name
              (String.concat "" (List.map (fun e -> " or " ^ e) extra)))
  | Enum allowed ->
    (match List.map String.lowercase_ascii args with
     | [ v ] when List.mem v allowed -> Ok ()
     | _ -> fail "%s must be one of %s" name (String.concat "|" allowed))
  | Port_list ->
    (match args with
     | [ spec ] ->
       (match parse_port spec with
        | Ok p ->
          if name = "listen" then state.listeners <- state.listeners @ [ p ];
          Ok ()
        | Error msg -> Error msg)
     | _ -> fail "%s takes one address or port argument" name)
  | Existing_dir ->
    (match args with
     | [ d ] when List.mem d existing_dirs -> Ok ()
     | [ d ] ->
       (* the shipped configs quote paths; unquote before checking *)
       let unq = strip_quotes d in
       if List.mem unq existing_dirs then Ok ()
       else fail "%s: could not open directory %s" name d
     | _ -> fail "%s takes one directory argument" name)
  | Existing_file ->
    (match args with
     | [ f ] when List.mem (strip_quotes f) existing_files -> Ok ()
     | [ f ] -> fail "%s: could not open file %s" name f
     | _ -> fail "%s takes one file argument" name)
  | Log_path ->
    (match args with
     | [ p ] ->
       let p = strip_quotes p in
       if String.length p > 0 && p.[0] = '|' then Ok ()
       else if List.mem (dir_of_path p) existing_dirs then Ok ()
       else fail "%s: could not open log file %s" name p
     | _ -> fail "%s takes one argument" name)
  | User_name ->
    (match args with
     | [ u ] when List.mem u known_users -> Ok ()
     | [ u ] -> fail "bad user name %s" u
     | _ -> fail "User takes one argument")
  | Group_name ->
    (match args with
     | [ g ] when List.mem g known_groups -> Ok ()
     | [ g ] -> fail "bad group name %s" g
     | _ -> fail "Group takes one argument")
  | Options_list ->
    let bad =
      List.find_opt
        (fun a ->
          let a = String.lowercase_ascii a in
          let a =
            if String.length a > 0 && (a.[0] = '+' || a.[0] = '-') then
              String.sub a 1 (String.length a - 1)
            else a
          in
          not (List.mem a option_tokens))
        args
    in
    (match bad with
     | Some a -> fail "Illegal option %s" a
     | None -> Ok ())
  | Override_list ->
    let bad =
      List.find_opt
        (fun a -> not (List.mem (String.lowercase_ascii a) override_tokens))
        args
    in
    (match bad with
     | Some a -> fail "Illegal override option %s" a
     | None -> Ok ())
  | Order_arg ->
    (match List.map String.lowercase_ascii args with
     | [ "allow,deny" ] | [ "deny,allow" ] | [ "mutual-failure" ] -> Ok ()
     | _ -> fail "unknown order")
  | From_list ->
    (match List.map String.lowercase_ascii args with
     | "from" :: _ :: _ -> Ok ()
     | _ -> fail "%s takes 'from <host>' arguments" name)
  | Min_args n ->
    if List.length args >= n then Ok ()
    else fail "%s takes at least %d argument(s)" name n

(* ------------------------------------------------------------------ *)
(* Config processing                                                    *)
(* ------------------------------------------------------------------ *)

type item =
  | Directive of string * string      (* name, raw argument text *)
  | Section of string * string * item list

let parse_config text =
  (* The SUT's own reader; same grammar as the injector's format module
     but with Apache's error messages. *)
  match Formats.Apacheconf.parse text with
  | Error e -> Error (Printf.sprintf "Syntax error: %s" (Formats.Parse_error.to_string e))
  | Ok tree ->
    let rec items (n : Conftree.Node.t) =
      n.children
      |> List.filter_map (fun (c : Conftree.Node.t) ->
             if c.kind = Conftree.Node.kind_directive then
               Some (Directive (c.name, Conftree.Node.value_or ~default:"" c))
             else if c.kind = Conftree.Node.kind_section then
               Some
                 (Section
                    ( c.name,
                      Option.value ~default:"" (Conftree.Node.attr c "arg"),
                      items c ))
             else None)
    in
    Ok (items tree)

let load_module state args =
  match fields args with
  | [ name; path ] ->
    (match List.assoc_opt name modules with
     | Some canonical when strip_quotes path = canonical ->
       state.loaded <- name :: state.loaded;
       Ok ()
     | Some canonical ->
       Error
         (Printf.sprintf
            "Cannot load %s into server: %s: cannot open shared object file (expected \
             %s)"
            path path canonical)
     | None ->
       Error
         (Printf.sprintf "Cannot load %s into server: undefined module %s" path name))
  | _ -> Error "LoadModule takes two arguments"

let handle_directive state ~vhost_port name args =
  let lname = String.lowercase_ascii name in
  if lname = "loadmodule" then load_module state args
  else
    match List.assoc_opt lname core_directives with
    | Some validator ->
      let r = validate_value state lname validator args in
      (match r with
       | Ok () ->
         if lname = "documentroot" then begin
           let root = strip_quotes (List.nth_opt (fields args) 0 |> Option.value ~default:"") in
           (match vhost_port with
            | None -> state.document_root <- root
            | Some p -> state.vhost_roots <- (p, root) :: state.vhost_roots)
         end;
         Ok ()
       | Error _ -> r)
    | None ->
      (match directive_module lname with
       | Some m when List.mem m state.loaded ->
         let validator =
           Option.value ~default:Anything (List.assoc_opt lname module_directive_validators)
         in
         let r = validate_value state lname validator args in
         if r = Ok () && lname = "directoryindex" then
           state.directory_index <- fields args;
         r
       | Some _ | None ->
         Error
           (Printf.sprintf
              "Invalid command '%s', perhaps misspelled or defined by a module not \
               included in the server configuration"
              name))

(* Keep in sync with the section match in [process]. *)
let known_sections =
  [ "ifmodule"; "virtualhost"; "directory"; "files"; "location"; "limit" ]

let ifmodule_ref arg =
  let a = Strutil.trim arg in
  let negated = String.length a > 0 && a.[0] = '!' in
  let a = if negated then String.sub a 1 (String.length a - 1) else a in
  (* <IfModule mod_userdir.c> names the source file; map it to the
     module identifier used by LoadModule. *)
  let mod_name =
    match Strutil.drop_prefix ~prefix:"mod_" a with
    | Some rest when Filename.check_suffix rest ".c" ->
      Filename.chop_suffix rest ".c" ^ "_module"
    | Some _ | None -> a
  in
  (mod_name, negated)

let rec process state ~vhost_port items =
  match items with
  | [] -> Ok ()
  | Directive (name, args) :: rest ->
    (match handle_directive state ~vhost_port name args with
     | Ok () -> process state ~vhost_port rest
     | Error msg -> Error msg)
  | Section (name, arg, children) :: rest ->
    let lname = String.lowercase_ascii name in
    let continue_with result =
      match result with
      | Ok () -> process state ~vhost_port rest
      | Error _ -> result
    in
    (match lname with
     | "ifmodule" ->
       let mod_name, negated = ifmodule_ref arg in
       let present = List.mem mod_name state.loaded in
       if (present && not negated) || ((not present) && negated) then
         continue_with (process state ~vhost_port children)
       else (* body skipped entirely: even invalid commands are ignored *)
         process state ~vhost_port rest
     | "virtualhost" ->
       (match parse_port (Strutil.trim arg) with
        | Ok p -> continue_with (process state ~vhost_port:(Some p) children)
        | Error _ when Strutil.trim arg = "*" ->
          continue_with (process state ~vhost_port:(Some 80) children)
        | Error msg -> Error (Printf.sprintf "VirtualHost: %s" msg))
     | "directory" | "files" | "location" | "limit" ->
       continue_with (process state ~vhost_port children)
     | other ->
       Error
         (Printf.sprintf
            "Invalid command '<%s', perhaps misspelled or defined by a module not \
             included in the server configuration"
            other))

(* ------------------------------------------------------------------ *)
(* Functional test: an HTTP GET, like the paper's diagnosis script       *)
(* ------------------------------------------------------------------ *)

let validate_directive ~loaded name args =
  let state =
    {
      listeners = [];
      document_root = "";
      loaded;
      directory_index = [];
      vhost_roots = [];
    }
  in
  handle_directive state ~vhost_port:None name args

let docroot_has_index root = root = "/var/www/html"

let functional_tests state () =
  let expected_port = 80 in
  if not (List.mem expected_port state.listeners) then
    [
      Sut.failed "http-get"
        (Printf.sprintf "connection refused on port %d (listening on: %s)" expected_port
           (String.concat "," (List.map string_of_int state.listeners)));
    ]
  else begin
    let root =
      match List.assoc_opt expected_port state.vhost_roots with
      | Some r -> r
      | None -> state.document_root
    in
    if not (docroot_has_index root) then
      [ Sut.failed "http-get" (Printf.sprintf "404 Not Found (DocumentRoot %s)" root) ]
    else if not (List.mem "index.html" state.directory_index) then
      [ Sut.failed "http-get" "403 Forbidden (no DirectoryIndex maps /)" ]
    else [ Sut.passed "http-get" ]
  end

(* httpd resolves LoadModule before the bulk of the configuration is
   interpreted (the shipped configs rely on this), so module loading is a
   separate first pass over the whole tree. *)
let rec preload_modules state items =
  match items with
  | [] -> Ok ()
  | Directive (name, args) :: rest when String.lowercase_ascii name = "loadmodule" ->
    (match load_module state args with
     | Ok () -> preload_modules state rest
     | Error _ as e -> e)
  | Directive _ :: rest -> preload_modules state rest
  | Section (_, _, children) :: rest ->
    (match preload_modules state children with
     | Ok () -> preload_modules state rest
     | Error _ as e -> e)

let boot configs =
  match List.assoc_opt "httpd.conf" configs with
  | None -> Error "httpd.conf not found"
  | Some main_text ->
    (* httpd.conf ends with an Include of ssl.conf; the two files form
       one configuration (the paper's multi-file Apache example). *)
    let text =
      match List.assoc_opt "ssl.conf" configs with
      | Some ssl -> main_text ^ "\n" ^ ssl
      | None -> main_text
    in
    (match parse_config text with
     | Error msg -> Error msg
     | Ok items ->
       let state =
         {
           listeners = [];
           document_root = "";
           loaded = [];
           directory_index = [];
           vhost_roots = [];
         }
       in
       (match
          match preload_modules state items with
          | Ok () -> process state ~vhost_port:None items
          | Error _ as e -> e
        with
        | Error msg -> Error msg
        | Ok () ->
          if state.listeners = [] then
            Error "no listening sockets available, shutting down"
          else
            Ok
              {
                Sut.run_tests = functional_tests state;
                shutdown = (fun () -> ());
              }))

let default_config =
  let load (name, path) = Printf.sprintf "LoadModule %s %s" name path in
  String.concat "\n"
    ([
       "# Apache HTTP Server main configuration";
       "ServerRoot /etc/httpd";
       "Listen 80";
       "PidFile /var/run/httpd.pid";
       "Timeout 120";
       "KeepAlive Off";
       "MaxKeepAliveRequests 100";
       "KeepAliveTimeout 15";
       "StartServers 8";
       "MinSpareServers 5";
       "MaxSpareServers 20";
       "ServerLimit 256";
       "MaxClients 256";
       "MaxRequestsPerChild 4000";
     ]
    @ List.map load modules
    @ [
        "User apache";
        "Group apache";
        "ServerAdmin root@localhost";
        "ServerName www.example.com";
        "UseCanonicalName Off";
        "DocumentRoot /var/www/html";
        "DirectoryIndex index.html index.html.var";
        "AccessFileName .htaccess";
        "TypesConfig /etc/mime.types";
        "DefaultType text/plain";
        "HostnameLookups Off";
        "ErrorLog /var/log/httpd/error_log";
        "LogLevel warn";
        "LogFormat \"%h %l %u %t\" common";
        "CustomLog /var/log/httpd/access_log common";
        "ServerTokens OS";
        "ServerSignature On";
        "Alias /icons/ /var/www/icons/";
        "ScriptAlias /cgi-bin/ /var/www/cgi-bin/";
        "IndexOptions FancyIndexing VersionSort NameWidth=*";
        "AddIconByType (TXT,/icons/text.gif) text/*";
        "DefaultIcon /icons/unknown.gif";
        "ReadmeName README.html";
        "HeaderName HEADER.html";
        "AddLanguage en .en";
        "AddLanguage fr .fr";
        "LanguagePriority en fr";
        "ForceLanguagePriority Prefer Fallback";
        "AddDefaultCharset UTF-8";
        "AddType application/x-compress .Z";
        "AddType application/x-gzip .gz .tgz";
        "AddHandler type-map var";
        "AddEncoding x-compress .Z";
        "AddEncoding x-gzip .gz .tgz";
        "BrowserMatch \"Mozilla/2\" nokeepalive";
        "BrowserMatch \"MSIE 4\\.0b2;\" nokeepalive downgrade-1.0";
        "SetEnvIf Request_URI \"\\.gif$\" object-is-image";
        "SetEnv APP_ENV production";
        "<Directory />";
        "  Options FollowSymLinks";
        "  AllowOverride None";
        "</Directory>";
        "<Directory \"/var/www/html\">";
        "  Options Indexes FollowSymLinks";
        "  AllowOverride None";
        "  Order allow,deny";
        "  Allow from all";
        "</Directory>";
        "<Directory \"/var/www/cgi-bin\">";
        "  AllowOverride None";
        "  Options None";
        "  Order allow,deny";
        "  Allow from all";
        "</Directory>";
        "<IfModule mod_userdir.c>";
        "  UserDir disabled";
        "</IfModule>";
        "<VirtualHost *:80>";
        "  ServerName www.example.com";
        "  DocumentRoot /var/www/html";
        "  ErrorLog /var/log/httpd/vhost_error_log";
        "  CustomLog /var/log/httpd/vhost_access_log common";
        "</VirtualHost>";
        "";
      ])

let ssl_config =
  String.concat "\n"
    [
      "# SSL virtual host configuration";
      "Listen 8443";
      "AddType application/x-x509-ca-cert .crt";
      "AddType application/x-pkcs7-crl .crl";
      "<VirtualHost *:8443>";
      "  ServerName www.example.com";
      "  DocumentRoot /var/www/html";
      "  ErrorLog /var/log/httpd/ssl_error_log";
      "  CustomLog /var/log/httpd/ssl_access_log common";
      "  SSLEngine on";
      "  SSLCertificateFile /etc/httpd/conf/magic";
      "</VirtualHost>";
      "";
    ]

let sut =
  {
    Sut.sut_name = "apache";
    version = "Apache httpd 2.2.6 (simulated)";
    config_files =
      [
        ("httpd.conf", Formats.Registry.apacheconf);
        ("ssl.conf", Formats.Registry.apacheconf);
      ];
    default_config = [ ("httpd.conf", default_config); ("ssl.conf", ssl_config) ];
    boot;
  }
