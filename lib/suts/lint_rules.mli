(** Static rule sets for the six mini SUTs (doc/lint.md).

    Each list captures, as {!Conferr_lint.Rule.t} data, both the checks
    the SUT's own validator performs at startup ("agreement" rules — a
    hit predicts a startup rejection) and the checks it omits (the flaw
    tables of the paper's §5 — a hit on a configuration the SUT boots is
    a {e silent acceptance} validator gap).  Rule documentation strings
    say which is which.

    The rule sets live next to the SUT implementations so they can reuse
    the very same parsers and namespaces ({!Mini_pg.parse_mem},
    {!Mini_mysql.resolve_name}, {!Mini_apache.validate_directive}, ...):
    the linter and the simulated server cannot drift apart. *)

val postgres : Conferr_lint.Rule.t list
(** postgresql.conf: unknown/duplicate/missing parameters, per-spec
    value checks, the §5.2 cross-parameter constraints.  PostgreSQL
    validates strictly, so most rules are agreement rules; the silent
    gap is deletion (built-in defaults apply without a message). *)

val mysql : Conferr_lint.Rule.t list
(** my.cnf: the quirky value parsers (stop-at-first-multiplier,
    silently-defaulted out-of-range values), abbreviated names, latent
    errors in never-parsed tool sections, unknown sections. *)

val apache : Conferr_lint.Rule.t list
(** httpd.conf + ssl.conf: full mirror of the server's directive
    processing (modules, [<IfModule>] skipping, value validators) plus
    the freeform-string flaws (ServerName, ServerAdmin, MIME types) and
    functional-failure predictions (Listen/DocumentRoot/DirectoryIndex). *)

val bind : Conferr_lint.Rule.t list
(** named.conf + zone files: option/zone declarations, dangling zone
    file references, the zone-load consistency checks BIND performs, and
    the RFC-1912 forward/reverse cross-checks it does {e not} perform
    (missing PTR, PTR to alias, CNAME chains). *)

val djbdns : Conferr_lint.Rule.t list
(** tinydns [data]: syntax (agreement — tinydns-data checks it too) and
    the referential checks tinydns-data never makes (CNAME collisions
    and chains, NS/MX targets that are aliases). *)

val appserver : Conferr_lint.Rule.t list
(** server.xml: unknown elements (silently skipped by the server — the
    XML flaw), strict attribute validation (agreement), connector/host
    functional predictions. *)

val all : (string * Conferr_lint.Rule.t list) list
(** Keyed by {!Sut.t.sut_name}, in registry order. *)

val for_sut : string -> Conferr_lint.Rule.t list option

val ids : Conferr_lint.Rule.t list -> string list
(** Distinct rule ids, first-appearance order.  Several rules share one
    id (e.g. one [PG-VALUE] rule per parameter spec); the id is the unit
    the inference differ ([lib/infer]) counts recovery over. *)
