module Rule = Conferr_lint.Rule
module Finding = Conferr_lint.Finding
module Dataflow = Conferr_lint.Dataflow
module Refgraph = Conferr_lint.Refgraph
module Node = Conftree.Node
module Config_set = Conftree.Config_set

let raw ?suggestion ~file ~path message =
  {
    Rule.raw_file = file;
    raw_path = path;
    raw_message = message;
    raw_suggestion = suggestion;
  }

(* ------------------------------------------------------------------ *)
(* PostgreSQL: the §5.2 cross-parameter constraints as Relation rules.
   Same parsers and defaults as the simulated server, so the static
   verdict cannot drift from the boot check. *)

let pg_read parse name v = Result.to_option (parse name v)

let pg_int_default name fallback =
  match List.assoc_opt name Mini_pg.specs with
  | Some (Mini_pg.Pint { default; _ }) -> default
  | _ -> fallback

let pg_mem_default name fallback =
  match List.assoc_opt name Mini_pg.specs with
  | Some (Mini_pg.Pmem { default_kb; _ }) -> default_kb
  | _ -> fallback

let pg_rel_fsm =
  Rule.make ~id:"PG-REL-FSM" ~severity:Finding.Error
    ~doc:"max_fsm_pages must be at least 16 * max_fsm_relations (agreement)"
    (Rule.Relation
       {
         target = Rule.anywhere;
         canon = Rule.lower;
         op = Rule.Rge;
         lhs =
           Rule.linexp
             [
               Rule.term
                 ~read:(pg_read Mini_pg.parse_strict_int "max_fsm_pages")
                 ~default:(pg_int_default "max_fsm_pages" 153600)
                 "max_fsm_pages";
             ];
         rhs =
           Rule.linexp
             [
               Rule.term ~coeff:16
                 ~read:(pg_read Mini_pg.parse_strict_int "max_fsm_relations")
                 ~default:(pg_int_default "max_fsm_relations" 1000)
                 "max_fsm_relations";
             ];
         describe = "max_fsm_pages >= 16 * max_fsm_relations";
         per_file = false;
         harvest = None;
       })

let pg_rel_shmem =
  Rule.make ~id:"PG-REL-SHMEM" ~severity:Finding.Error
    ~doc:
      "shared_buffers must cover 16kB of shared memory per allowed \
       connection (agreement)"
    (Rule.Relation
       {
         target = Rule.anywhere;
         canon = Rule.lower;
         op = Rule.Rge;
         lhs =
           Rule.linexp
             [
               Rule.term ~unit_label:"kb"
                 ~read:(pg_read Mini_pg.parse_mem "shared_buffers")
                 ~default:(pg_mem_default "shared_buffers" (24 * 1024))
                 "shared_buffers";
             ];
         rhs =
           Rule.linexp
             [
               Rule.term ~coeff:16
                 ~read:(pg_read Mini_pg.parse_strict_int "max_connections")
                 ~default:(pg_int_default "max_connections" 100)
                 "max_connections";
             ];
         describe = "shared_buffers >= 16kB * max_connections";
         per_file = false;
         harvest = None;
       })

let pg_specs =
  List.map
    (fun (name, sp) ->
      match sp with
      | Mini_pg.Pint { min; max; default } ->
        Dataflow.num
          ~read:(pg_read Mini_pg.parse_strict_int name)
          ~lo:min ~hi:max ~default name
      | Mini_pg.Pmem { min_kb; max_kb; default_kb } ->
        Dataflow.num
          ~read:(pg_read Mini_pg.parse_mem name)
          ~lo:min_kb ~hi:max_kb ~default:default_kb name
      | Mini_pg.Ptime { min_ms; max_ms; default_ms } ->
        Dataflow.num
          ~read:(pg_read Mini_pg.parse_time name)
          ~lo:min_ms ~hi:max_ms ~default:default_ms name
      | Mini_pg.Pbool _ -> Dataflow.boolean name
      | Mini_pg.Penum (allowed, _) -> Dataflow.enum name allowed
      | Mini_pg.Pfloat _ | Mini_pg.Pstring _ -> Dataflow.str name)
    Mini_pg.specs

(* ------------------------------------------------------------------ *)
(* Apache: the keep-alive ordering constraint httpd itself never
   checks, plus cross-file shadowing of set-once directives. *)

let ap_rel_keepalive =
  Rule.make ~id:"AP-REL-KEEPALIVE" ~severity:Finding.Warning
    ~doc:
      "KeepAliveTimeout above Timeout is ineffective; httpd accepts it \
       silently (gap)"
    (Rule.Relation
       {
         target = Rule.top_level;
         canon = Rule.lower;
         op = Rule.Rle;
         lhs =
           Rule.linexp
             [
               Rule.term ~read:Dataflow.read_count ~default:15
                 "keepalivetimeout";
             ];
         rhs =
           Rule.linexp
             [ Rule.term ~read:Dataflow.read_count ~default:300 "timeout" ];
         describe = "KeepAliveTimeout <= Timeout";
         per_file = false;
         harvest = None;
       })

(* Directives with set-once (last-one-wins) semantics; a second
   definition in another file silently shadows the first.  Additive
   directives (Listen, AddType, LoadModule, ...) are excluded. *)
let ap_singletons =
  [
    "timeout";
    "keepalivetimeout";
    "keepalive";
    "maxkeepaliverequests";
    "maxclients";
    "serverlimit";
    "servername";
    "serveradmin";
    "serverroot";
    "documentroot";
    "defaulttype";
    "directoryindex";
    "errorlog";
    "loglevel";
    "pidfile";
  ]

let ap_xfile =
  Rule.make ~id:"AP-XFILE" ~severity:Finding.Warning
    ~doc:
      "a set-once directive defined in several files is silently \
       last-one-wins (gap)"
    (Rule.Check_set
       (fun set ->
         Config_set.cross_file_duplicates ~kind:Node.kind_directive
           ~canon:Rule.lower set
         |> List.concat_map (fun (name, occs) ->
                if not (List.mem name ap_singletons) then []
                else
                  match List.rev occs with
                  | [] -> []
                  | (last_file, _) :: shadowed ->
                    List.rev_map
                      (fun (file, path) ->
                        raw ~file ~path
                          (Printf.sprintf
                             "directive '%s' is shadowed by a later \
                              definition in '%s'; only the last one takes \
                              effect"
                             name last_file))
                      shadowed)))

let ap_specs =
  [
    Dataflow.num ~read:Dataflow.read_count ~lo:0 ~hi:max_int ~default:300
      "timeout";
    Dataflow.num ~read:Dataflow.read_count ~lo:0 ~hi:max_int ~default:15
      "keepalivetimeout";
    Dataflow.num ~read:Dataflow.read_count ~lo:1 ~hi:max_int ~default:256
      "maxclients";
    Dataflow.boolean "keepalive";
  ]

(* ------------------------------------------------------------------ *)
(* BIND: SOA timer ordering (RFC 1912 §2.2 — named loads the zone
   without a word either way) and the zone-declaration reference
   graph. *)

(* BIND TTL syntax: concatenated <num><unit> groups (1d12h); a bare
   number is seconds. *)
let bd_ttl v =
  let v = String.lowercase_ascii (String.trim v) in
  let n = String.length v in
  if n = 0 then None
  else
    let rec go i acc =
      if i >= n then Some acc
      else
        let rec digits j =
          if j < n && match v.[j] with '0' .. '9' -> true | _ -> false then
            digits (j + 1)
          else j
        in
        let j = digits i in
        if j = i then None
        else
          let num = int_of_string (String.sub v i (j - i)) in
          if j >= n then Some (acc + num)
          else
            let mult =
              match v.[j] with
              | 's' -> Some 1
              | 'm' -> Some 60
              | 'h' -> Some 3600
              | 'd' -> Some 86400
              | 'w' -> Some 604800
              | _ -> None
            in
            match mult with
            | None -> None
            | Some m -> go (j + 1) (acc + (num * m))
    in
    go 0 0

(* SOA rdata: mname rname ( serial refresh retry expire minimum ) —
   all-or-nothing so a relation never mixes real and default timers. *)
let bd_soa_fields rdata =
  let tokens =
    String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) rdata)
    |> List.concat_map (fun t ->
           match String.trim t with "" | "(" | ")" -> [] | t -> [ t ])
  in
  match tokens with
  | [ _mname; _rname; _serial; refresh; retry; expire; _minimum ] -> (
    match (bd_ttl refresh, bd_ttl retry, bd_ttl expire) with
    | Some _, Some _, Some _ -> Some (refresh, retry, expire)
    | _ -> None)
  | _ -> None

let bd_soa_harvest _file (root : Node.t) =
  List.concat
    (List.mapi
       (fun i (n : Node.t) ->
         if
           n.kind = Node.kind_record
           && String.uppercase_ascii
                (Option.value ~default:"" (Node.attr n "type"))
              = "SOA"
         then
           match bd_soa_fields (Node.value_or ~default:"" n) with
           | Some (refresh, retry, expire) ->
             [
               ("soa-refresh", [ i ], refresh);
               ("soa-retry", [ i ], retry);
               ("soa-expire", [ i ], expire);
             ]
           | None -> []
         else [])
       root.children)

let bd_rel_retry =
  Rule.make ~id:"BD-REL-RETRY" ~severity:Finding.Warning
    ~doc:
      "the SOA retry interval should be shorter than the refresh \
       interval; named loads the zone regardless (gap)"
    (Rule.Relation
       {
         target = Rule.anywhere;
         canon = Rule.lower;
         op = Rule.Rlt;
         lhs =
           Rule.linexp
             [ Rule.term ~unit_label:"ms" ~read:bd_ttl ~default:3600 "soa-retry" ];
         rhs =
           Rule.linexp
             [
               Rule.term ~unit_label:"ms" ~read:bd_ttl ~default:10800
                 "soa-refresh";
             ];
         describe = "SOA retry < refresh";
         per_file = true;
         harvest = Some bd_soa_harvest;
       })

let bd_rel_expire =
  Rule.make ~id:"BD-REL-EXPIRE" ~severity:Finding.Warning
    ~doc:
      "the SOA expire interval should exceed the refresh interval; named \
       loads the zone regardless (gap)"
    (Rule.Relation
       {
         target = Rule.anywhere;
         canon = Rule.lower;
         op = Rule.Rgt;
         lhs =
           Rule.linexp
             [
               Rule.term ~unit_label:"ms" ~read:bd_ttl ~default:604800
                 "soa-expire";
             ];
         rhs =
           Rule.linexp
             [
               Rule.term ~unit_label:"ms" ~read:bd_ttl ~default:10800
                 "soa-refresh";
             ];
         describe = "SOA expire > refresh";
         per_file = true;
         harvest = Some bd_soa_harvest;
       })

let bd_unquote v =
  let v = String.trim v in
  if String.length v >= 2 && v.[0] = '"' && v.[String.length v - 1] = '"' then
    String.sub v 1 (String.length v - 2)
  else v

let bd_zone_edges set =
  match Config_set.find set "named.conf" with
  | None -> []
  | Some root ->
    List.concat
      (List.mapi
         (fun i (n : Node.t) ->
           if
             n.kind = Node.kind_section
             && String.lowercase_ascii n.name = "zone"
           then
             List.concat
               (List.mapi
                  (fun j (d : Node.t) ->
                    if
                      d.kind = Node.kind_directive
                      && String.lowercase_ascii d.name = "file"
                    then
                      [
                        {
                          Refgraph.e_file = "named.conf";
                          e_path = [ i; j ];
                          e_what = "zone file";
                          e_target = bd_unquote (Node.value_or ~default:"" d);
                        };
                      ]
                    else [])
                  n.children)
           else [])
         root.children)

let bd_graph =
  Rule.make ~id:"BD-GRAPH" ~severity:Finding.Warning
    ~doc:
      "two zone declarations serving one master file silently answer \
       from the same data (gap)"
    (Rule.Check_set
       (fun set ->
         let edges = bd_zone_edges set in
         let targets =
           List.fold_left
             (fun acc (e : Refgraph.edge) ->
               if List.mem e.e_target acc then acc else acc @ [ e.e_target ])
             [] edges
         in
         List.concat_map
           (fun target ->
             match
               List.filter
                 (fun (e : Refgraph.edge) -> e.e_target = target)
                 edges
             with
             | _ :: _ :: _ as multi ->
               List.map
                 (fun (e : Refgraph.edge) ->
                   raw ~file:e.e_file ~path:e.e_path
                     (Printf.sprintf
                        "zone file '%s' is declared by %d zones; they are \
                         served from the same master data"
                        target (List.length multi)))
                 multi
             | _ -> [])
           targets))

(* ------------------------------------------------------------------ *)
(* MySQL: silent-default taint — the written value the quirky parsers
   would silently replace with the built-in default. *)

let my_read parse (b : Mini_mysql.bounds) v =
  match parse ~default:b.Mini_mysql.default ~min:b.min ~max:b.max v with
  | Mini_mysql.Accepted n -> Some (Int64.to_int n)
  | Mini_mysql.Defaulted | Mini_mysql.Rejected _ -> None

let my_specs =
  List.filter_map
    (fun (name, sp) ->
      match sp with
      | Mini_mysql.Size b ->
        Some
          (Dataflow.num ~lenient:true
             ~read:(my_read Mini_mysql.parse_size b)
             ~lo:min_int ~hi:max_int
             ~default:(Int64.to_int b.Mini_mysql.default)
             name)
      | Mini_mysql.Int b ->
        Some
          (Dataflow.num ~lenient:true
             ~read:(my_read Mini_mysql.parse_int b)
             ~lo:min_int ~hi:max_int
             ~default:(Int64.to_int b.Mini_mysql.default)
             name)
      | Mini_mysql.Bool _ -> Some (Dataflow.boolean name)
      | Mini_mysql.Path_existing _ | Mini_mysql.Path_any _ ->
        Some (Dataflow.str name)
      | Mini_mysql.Flag -> None)
    Mini_mysql.mysqld_specs

let my_taint =
  Dataflow.taint_rule ~id:"MY-TAINT" ~canon:Mini_mysql.fold_dashes
    ~specs:my_specs
    "a value the quirky numeric parsers silently replace with the \
     built-in default (gap)"

(* ------------------------------------------------------------------ *)
(* Registry *)

let canon = function
  | "mysql" -> Mini_mysql.fold_dashes
  | _ -> Rule.lower

let specs = function
  | "postgres" -> pg_specs
  | "apache" -> ap_specs
  | "mysql" -> my_specs
  | _ -> []

let edges sut set = match sut with "bind" -> bd_zone_edges set | _ -> []

let deep_rules = function
  | "postgres" -> [ pg_rel_fsm; pg_rel_shmem ]
  | "apache" -> [ ap_rel_keepalive; ap_xfile ]
  | "bind" -> [ bd_rel_retry; bd_rel_expire; bd_graph ]
  | "mysql" -> [ my_taint ]
  | _ -> []

let supersedes = function "postgres" -> [ "PG-CROSS" ] | _ -> []

let deepen sut base =
  let dead = supersedes sut in
  List.filter (fun (r : Rule.t) -> not (List.mem r.Rule.id dead)) base
  @ deep_rules sut

let dataflow_ids sut =
  List.sort_uniq compare
    (List.map (fun (r : Rule.t) -> r.Rule.id) (deep_rules sut))
