let all =
  [
    Mini_mysql.sut; Mini_pg.sut; Mini_apache.sut; Mini_bind.sut;
    Mini_djbdns.sut; Mini_appserver.sut;
  ]

(* Accept the simulator module names and a few common aliases alongside
   the canonical SUT names, so "--sut mini_pg" works as the docs and
   Makefile use it. *)
let aliases =
  [
    ("mini_pg", "postgres"); ("pg", "postgres"); ("postgresql", "postgres");
    ("mini_mysql", "mysql");
    ("mini_apache", "apache"); ("httpd", "apache");
    ("mini_bind", "bind"); ("named", "bind");
    ("mini_djbdns", "djbdns"); ("tinydns", "djbdns");
    ("mini_appserver", "appserver");
  ]

let find name =
  let name = String.lowercase_ascii name in
  let name =
    match List.assoc_opt name aliases with
    | Some canonical -> canonical
    | None -> name
  in
  List.find_opt (fun s -> s.Sut.sut_name = name) all

let names = List.map (fun s -> s.Sut.sut_name) all
