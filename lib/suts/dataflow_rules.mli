(** Deep (corpus-level) rule profiles for the six mini SUTs.

    The dataflow analysis of [lib/lint] is generic; this module supplies
    the per-SUT pieces: {!Conferr_lint.Rule.body.Relation} rules
    mirroring the paper's cross-parameter faults (pg's
    [max_fsm_pages >= 16 * max_fsm_relations], Apache's keep-alive
    ordering, BIND's SOA timers), cross-file shadowing and
    reference-graph rules, silent-default taint specs for MySQL's
    lenient parsers, and the abstract-value specifications
    [conferr analyze] interprets stock sets against.  Used by
    [conferr analyze], [conferr lint --deep] and [conferr gaps --deep]. *)

val deep_rules : string -> Conferr_lint.Rule.t list
(** Extra corpus-level rules for [sut_name]; [[]] for SUTs without a
    deep profile. *)

val supersedes : string -> string list
(** Base rule ids the deep profile replaces (e.g. pg's [PG-CROSS]
    implies-rules are subsumed by the [PG-REL-*] relations, which carry
    both ConfPaths). *)

val deepen : string -> Conferr_lint.Rule.t list -> Conferr_lint.Rule.t list
(** [deepen sut base] is [base] minus {!supersedes} plus
    {!deep_rules}. *)

val dataflow_ids : string -> string list
(** Sorted distinct ids of {!deep_rules} — the label space of the
    [conferr_dataflow_findings_total] metric. *)

val specs : string -> Conferr_lint.Dataflow.vspec list
(** Abstract-value specifications for the SUT's directives (empty for
    SUTs whose values the lattice does not model). *)

val canon : string -> string -> string
(** The SUT's directive-name canonicalizer ({!Mini_mysql.fold_dashes}
    for mysql, lowercasing otherwise). *)

val edges : string -> Conftree.Config_set.t -> Conferr_lint.Refgraph.edge list
(** Cross-file reference edges (BIND's zone declarations; empty
    otherwise). *)
