(** Simulated Apache HTTP Server 2.2.

    Behaviours reproduced (paper §5.2 and Table 2):

    - directive names are case-insensitive; an unknown name aborts
      startup with "Invalid command ... perhaps misspelled or defined by
      a module not included in the server configuration"
    - directives are provided by modules: deleting (or typo-ing) a
      [LoadModule] line makes every directive of that module an invalid
      command — the mechanism behind many startup-detected faults
    - [AddType]/[DefaultType] accept freeform strings instead of
      RFC-2045 [type/subtype] values (flaw); [ServerAdmin] and
      [ServerName] likewise accept anything (flaws)
    - a typo in [Listen]'s port survives startup and is only caught by
      the functional HTTP GET (the paper's 5% functional detections)
    - nested sections ([<VirtualHost>], [<Directory>], [<IfModule>]);
      [<IfModule>] bodies are skipped when the module is absent
    - enum-valued directives ([LogLevel], [KeepAlive], [Options], ...)
      are strictly validated *)

val sut : Sut.t

(** {1 Exposed for white-box unit tests} *)

val known_module : string -> bool

val directive_module : string -> string option
(** The module a directive comes from ([None] = core). *)

(** {1 Exposed for the static rule set ({!Lint_rules.apache})} *)

val modules : (string * string) list
(** Module identifier to canonical [LoadModule] path. *)

val known_sections : string list
(** Lowercased section names [process] understands. *)

val ifmodule_ref : string -> string * bool
(** The module identifier an [<IfModule>] argument names (mapping
    [mod_x.c] to [x_module]) and whether the test is negated (["!"]). *)

val validate_directive :
  loaded:string list -> string -> string -> (unit, string) result
(** [validate_directive ~loaded name args] runs the server's own
    directive validation against a throwaway state: the exact
    known/module-gating/value checks of startup, without the side
    effects.  [loaded] is the set of loaded module identifiers. *)
