(** Simulated MySQL 5.1 server.

    The configuration surface reproduces the behaviours the paper
    documents for MySQL (§5.2 and Table 2):

    - one shared file ([my.cnf]) holds the daemon section plus sections
      for auxiliary tools; {e only} [\[mysqld\]] (and, at functional-test
      time, [\[client\]]) is parsed when the daemon starts — typos in
      [\[mysqldump\]] or [\[mysqld_safe\]] stay latent
    - numeric values accept K/M/G multipliers but parsing stops at the
      first multiplier symbol: ["1M0"] is accepted as 1M
    - numeric values that {e start} with a multiplier are silently
      replaced by the default
    - out-of-bounds numeric values are silently ignored (default used)
    - directives without a value are accepted and defaulted
    - directive names are case-sensitive, but unambiguous prefixes are
      accepted, and ['-'] and ['_'] are interchangeable
    - unknown directives in [\[mysqld\]] abort startup *)

val sut : Sut.t

val full_config : string
(** A [\[mysqld\]] configuration with most variables set to their default
    values — the §5.5 comparison benchmark's starting file (flags and
    booleans excluded, as in the paper). *)

val shared_tools_config : string
(** The default configuration extended with [\[mysqldump\]] and
    [\[mysqld_safe\]] sections: the shared file whose tool sections the
    daemon never parses (the latent-error flaw of §5.2). *)

val run_mysqldump : string -> (unit, string) result
(** Simulate a later run of the [mysqldump] auxiliary tool against the
    shared configuration file: it parses only its own section, so this is
    where errors that the daemon never saw finally surface (the paper's
    latent-error scenario — "some of these auxiliary tools run
    unattended, launched by cron jobs during the night"). *)

(** {1 Exposed for white-box unit tests} *)

type parsed = Accepted of int64 | Defaulted | Rejected of string

val parse_size : default:int64 -> min:int64 -> max:int64 -> string -> parsed
(** The quirky size parser (multiplier suffixes). *)

val parse_int : default:int64 -> min:int64 -> max:int64 -> string -> parsed

val resolve_name : string -> [ `Known of string | `Ambiguous | `Unknown ]
(** Variable-name resolution over the [\[mysqld\]] namespace: exact,
    dash/underscore-folded, or unambiguous-prefix match. *)

(** {1 Exposed for the static rule set ({!Lint_rules.mysql})} *)

type bounds = { min : int64; max : int64; default : int64 }

type spec =
  | Size of bounds  (** accepts K/M/G multiplier suffixes *)
  | Int of bounds
  | Bool of bool
  | Path_existing of string  (** simulated filesystem lookup *)
  | Path_any of string
  | Flag  (** valueless directive *)

val mysqld_specs : (string * spec) list
(** The [\[mysqld\]] variable namespace (underscore-folded names). *)

val existing_paths : string list
(** The simulated host filesystem. *)

val mysqldump_options : string list
(** The option namespace of the [\[mysqldump\]] tool section. *)

val fold_dashes : string -> string
(** ['-'] to ['_'], MySQL's name normalization. *)
