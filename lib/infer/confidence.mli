(** Deterministic confidence thresholds and id assignment
    (doc/infer.md).

    Confidence is the rational [support / (support + contradictions)] —
    counting only, no wall-clock or randomness, so the kept set and its
    order are byte-stable for any [--jobs].  Ids are assigned after
    filtering, numbered per kind in list order ([INF-VALUE-001], ...),
    so they are stable too. *)

type thresholds = { min_support : int; min_confidence : float }

val default : thresholds
(** [{ min_support = 1; min_confidence = 0.5 }] — a single clean
    observation is kept (the paper faultloads delete each directive
    exactly once), a candidate contradicted as often as supported is
    not. *)

val filter : thresholds -> Candidate.t list -> Candidate.t list
(** Keep candidates with [support >= min_support] and
    [confidence >= min_confidence]; order preserved. *)

val assign_ids : Candidate.t list -> Candidate.t list
(** Number candidates per kind in list order: [INF-VALUE-001],
    [INF-REQUIRED-001], [INF-UNKNOWN-001], [INF-IMPLIES-001], ... *)
