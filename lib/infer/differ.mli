(** Rule differ: inferred candidates vs the hand-written rule set
    (doc/infer.md) — the gap taxonomy pointed at ourselves.

    The join key between the two sides is the replayed journal: for
    each hand-written rule id, the set of journal entries on which it
    fires statically (from a {!Conferr_lint_replay.scan}); for each
    candidate, its supporting entries.  A candidate matches a rule
    when their shapes are compatible {e and} either their names agree
    (typed bodies) or their entry sets overlap (opaque [Check_set]
    analyses and [Implies] checks).  Verdicts per hand rule id:

    - {b recovered} — some kept candidate matches it;
    - {b missed-by-inference} — no candidate matches (the journals
      never exercised it, or the evidence was below thresholds);
    - {b contradicted} — an [Agreement]-claim error rule fires on an
      entry the SUT {e accepted} silently: the rule claims the
      validator rejects this, the journal shows it does not.

    Candidates matching no hand rule are {b missed-by-hand}: mined
    constraints the rule set should gain. *)

type rule_verdict = {
  rule_id : string;
  claim : Conferr_lint.Rule.claim;
  fired : string list;         (** entry ids where it fires statically *)
  matched : string list;       (** matching candidate ids *)
  contradicting : string list; (** entry ids refuting an agreement claim *)
}

type t = {
  rules : rule_verdict list;       (** hand rule ids, set order *)
  recovered : string list;
  missed_by_inference : string list;
  contradicted : string list;
  missed_by_hand : string list;    (** candidate ids *)
  matches_of : (string * string list) list;
      (** candidate id -> matching rule ids, candidate order *)
}

val diff :
  hand:Conferr_lint.Rule.t list ->
  replay:Conferr_lint_replay.report ->
  candidates:Candidate.t list -> t

val verdict_label : string -> t -> string
(** For a hand rule id: ["recovered"], ["missed-by-inference"] or
    ["contradicted"] (contradiction wins over recovery). *)
