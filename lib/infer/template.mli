(** Log-template mining (doc/infer.md).

    A template is a SUT error/validator message with every volatile
    span masked — the normalization is {!Conferr_exec.Signature.normalize}
    (lowercase; decimal/hex literals and unit-suffixed sizes/durations
    to [#]; quoted spans to [<q>]; whitespace collapsed), the same
    masking the signature-clustering layer uses, so one runtime failure
    mode maps to one template regardless of the concrete values in it
    (ConfInLog's first step).

    The extraction helpers below read the {e raw} message: the masked
    spans are exactly where the constraint parameters live (the quoted
    token names the directive, the integers in a "valid range" clause
    are its bounds). *)

val mine : string -> string
(** The template of a message.  Idempotent (property-tested). *)

val quoted : string -> string list
(** Contents of balanced single- or double-quoted spans, in order —
    the spans {!mine} masks as [<q>]. *)

val ints : string -> int list
(** Decimal integer literals (maximal digit runs that fit in [int]),
    in order. *)

val parenthesized : string -> string option
(** The contents of the last balanced [(...)] span, if any — error
    messages conventionally put the valid range there
    (["(64 .. 2147483647)"]). *)

val mentions : name:string -> string -> bool
(** Whole-word, case-insensitive occurrence of a directive name in a
    message or template (word characters: letters, digits, [_], [-]). *)
