(** Cross-directive co-occurrence candidates (doc/infer.md).

    Ocasta's observation, applied to error templates: when one failure
    template names {e several} configured directives, those directives
    are jointly constrained — mutating one breaks an invariant that
    involves the others ("max_fsm_pages must be at least 16 *
    max_fsm_relations").  A template contributes a candidate when (a)
    at least two stock directive names of the mutated file occur as
    whole words in the raw message, and (b) the mutated directive
    itself is among them (the message is about the edit, not incidental
    wording).  Candidates over the same name set merge. *)

val candidates :
  base:Conftree.Config_set.t -> Evidence.row list -> Candidate.t list
(** First-appearance order of (file, name-set). *)
