let mine = Conferr_exec.Signature.normalize

let quoted s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = '"' || c = '\'' then begin
      match String.index_from_opt s (!i + 1) c with
      | Some close ->
        out := String.sub s (!i + 1) (close - !i - 1) :: !out;
        i := close + 1
      | None -> incr i
    end
    else incr i
  done;
  List.rev !out

let is_digit c = c >= '0' && c <= '9'

let ints s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_digit s.[!i] then begin
      let j = ref !i in
      while !j < n && is_digit s.[!j] do incr j done;
      (match int_of_string_opt (String.sub s !i (!j - !i)) with
      | Some v -> out := v :: !out
      | None -> ());
      i := !j
    end
    else incr i
  done;
  List.rev !out

let parenthesized s =
  match String.rindex_opt s '(' with
  | None -> None
  | Some opening -> (
    match String.index_from_opt s opening ')' with
    | None -> None
    | Some closing -> Some (String.sub s (opening + 1) (closing - opening - 1)))

let is_word c =
  (c >= 'a' && c <= 'z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

let mentions ~name s =
  let name = String.lowercase_ascii name in
  let s = String.lowercase_ascii s in
  let ln = String.length name and ls = String.length s in
  ln > 0
  &&
  let rec scan from =
    if from + ln > ls then false
    else
      match String.index_from_opt s from name.[0] with
      | None -> false
      | Some i ->
        if
          i + ln <= ls
          && String.sub s i ln = name
          && (i = 0 || not (is_word s.[i - 1]))
          && (i + ln = ls || not (is_word s.[i + ln]))
        then true
        else scan (i + 1)
  in
  scan 0
