type thresholds = { min_support : int; min_confidence : float }

let default = { min_support = 1; min_confidence = 0.5 }

let filter t cands =
  List.filter
    (fun (c : Candidate.t) ->
      List.length c.support >= t.min_support
      && Candidate.confidence c >= t.min_confidence)
    cands

let assign_ids cands =
  let counters = Hashtbl.create 4 in
  List.map
    (fun (c : Candidate.t) ->
      let kind = String.uppercase_ascii (Candidate.kind_label c.kind) in
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt counters kind) in
      Hashtbl.replace counters kind n;
      { c with id = Printf.sprintf "INF-%s-%03d" kind n })
    cands
