(** Rendering and export of a {!Pipeline.result} (doc/infer.md): the
    text report, the JSON document, the loadable rule file
    ([--emit-rules]), Prometheus counters and the dashboard panel.
    Everything here is a pure function of the result, hence
    byte-identical for any [--jobs]. *)

val recovery : Pipeline.result -> int * int
(** (recovered, total) over hand-written rule ids. *)

val majority : Pipeline.result -> bool
(** [2 * recovered >= total] — the ROADMAP item-2 acceptance bar. *)

val render : Pipeline.result -> string
(** The text report: evidence summary, kept candidates with support /
    confidence / verdict, and the rule diff. *)

val to_json : Pipeline.result -> Conferr_obsv.Json.t

val rule_specs : Pipeline.result -> Conferr_lint.Rule_file.spec list
(** The candidates expressible in the loadable subset, candidate
    order — what [--emit-rules] writes. *)

val record_metrics : Conferr_obsv.Metrics.t -> Pipeline.result -> unit
(** [conferr_infer_candidates_total{sut,kind,claim}] and
    [conferr_infer_rule_diff_total{sut,verdict}]. *)

val dashboard_rows :
  hand:Conferr_lint.Rule.t list -> Pipeline.result ->
  Conferr_obsv.Report.infer_row list
(** Candidate rows (verdict recovered / missed-by-hand) followed by the
    hand-written rules inference missed or contradicted. *)
