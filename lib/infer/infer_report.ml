module Json = Conferr_obsv.Json
module Rule = Conferr_lint.Rule
module Finding = Conferr_lint.Finding
module Rule_file = Conferr_lint.Rule_file

let recovery (r : Pipeline.result) =
  (List.length r.diff.recovered, List.length r.diff.rules)

let majority r =
  let recovered, total = recovery r in
  total > 0 && 2 * recovered >= total

let candidate_verdict (r : Pipeline.result) (c : Candidate.t) =
  match List.assoc_opt c.id r.diff.matches_of with
  | Some [] | None -> "missed-by-hand"
  | Some _ -> "recovered"

let render (r : Pipeline.result) =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "constraint inference: %s\n" r.evidence.sut_name;
  Printf.bprintf buf "journal entries: %d (unmatched: %d)\n"
    (List.length r.evidence.rows)
    (List.length r.evidence.unmatched);
  Printf.bprintf buf
    "evidence tables: %d; candidates kept: %d (dropped below thresholds: \
     %d; min-support %d, min-confidence %.2f)\n"
    (List.length r.tables)
    (List.length r.candidates)
    r.dropped r.thresholds.min_support r.thresholds.min_confidence;
  if r.candidates <> [] then begin
    Buffer.add_string buf "\ncandidates:\n";
    List.iter
      (fun (c : Candidate.t) ->
        let matches =
          match List.assoc_opt c.id r.diff.matches_of with
          | Some (_ :: _ as ids) -> "-> " ^ String.concat "," ids
          | _ -> "missed-by-hand"
        in
        Printf.bprintf buf
          "  %-16s %-8s %-9s %-32s support %-3d confidence %.2f  %s\n" c.id
          (Candidate.kind_label c.kind)
          (Rule.claim_label c.claim)
          (Candidate.target_string c)
          (List.length c.support) (Candidate.confidence c) matches;
        Printf.bprintf buf "    %s\n" c.doc)
      r.candidates
  end;
  let recovered, total = recovery r in
  Printf.bprintf buf "\nrule diff vs hand-written set (%d rule ids):\n" total;
  let show label ids =
    Printf.bprintf buf "  %-20s %d%s\n" label (List.length ids)
      (if ids = [] then "" else ": " ^ String.concat ", " ids)
  in
  show "recovered" r.diff.recovered;
  show "missed-by-inference" r.diff.missed_by_inference;
  show "contradicted" r.diff.contradicted;
  show "missed-by-hand" r.diff.missed_by_hand;
  Printf.bprintf buf "recovery: %d/%d hand-written rule ids (majority: %s)\n"
    recovered total
    (if majority r then "yes" else "no");
  Buffer.contents buf

let candidate_to_json r (c : Candidate.t) =
  Json.Obj
    [
      ("id", Json.Str c.id);
      ("kind", Json.Str (Candidate.kind_label c.kind));
      ("file", Json.Str c.file);
      ("section", Json.Str c.section);
      ("name", Json.Str c.name);
      ("node_kind", Json.Str c.node_kind);
      ("doc", Json.Str c.doc);
      ("severity", Json.Str (Finding.severity_label c.severity));
      ("claim", Json.Str (Rule.claim_label c.claim));
      ("confidence", Json.Num (Candidate.confidence c));
      ("support", Json.Arr (List.map (fun s -> Json.Str s) c.support));
      ( "contradictions",
        Json.Arr (List.map (fun s -> Json.Str s) c.contradictions) );
      ("templates", Json.Arr (List.map (fun s -> Json.Str s) c.templates));
      ( "spec",
        match c.spec with
        | None -> Json.Null
        | Some body -> Rule_file.json_of_body body );
      ( "matches",
        Json.Arr
          (List.map
             (fun s -> Json.Str s)
             (Option.value ~default:[] (List.assoc_opt c.id r.Pipeline.diff.matches_of))) );
      ("verdict", Json.Str (candidate_verdict r c));
    ]

let rule_to_json (r : Pipeline.result) (rv : Differ.rule_verdict) =
  Json.Obj
    [
      ("id", Json.Str rv.rule_id);
      ("claim", Json.Str (Rule.claim_label rv.claim));
      ("fired", Json.Arr (List.map (fun s -> Json.Str s) rv.fired));
      ("matched", Json.Arr (List.map (fun s -> Json.Str s) rv.matched));
      ( "contradicting",
        Json.Arr (List.map (fun s -> Json.Str s) rv.contradicting) );
      ("verdict", Json.Str (Differ.verdict_label rv.rule_id r.diff));
    ]

let to_json (r : Pipeline.result) =
  let recovered, total = recovery r in
  let strs l = Json.Arr (List.map (fun s -> Json.Str s) l) in
  Json.Obj
    [
      ("sut", Json.Str r.evidence.sut_name);
      ("entries", Json.Num (float_of_int (List.length r.evidence.rows)));
      ("unmatched", strs r.evidence.unmatched);
      ( "thresholds",
        Json.Obj
          [
            ("min_support", Json.Num (float_of_int r.thresholds.min_support));
            ("min_confidence", Json.Num r.thresholds.min_confidence);
          ] );
      ("dropped", Json.Num (float_of_int r.dropped));
      ("candidates", Json.Arr (List.map (candidate_to_json r) r.candidates));
      ("rules", Json.Arr (List.map (rule_to_json r) r.diff.rules));
      ( "diff",
        Json.Obj
          [
            ("recovered", strs r.diff.recovered);
            ("missed_by_inference", strs r.diff.missed_by_inference);
            ("contradicted", strs r.diff.contradicted);
            ("missed_by_hand", strs r.diff.missed_by_hand);
          ] );
      ( "recovery",
        Json.Obj
          [
            ("recovered", Json.Num (float_of_int recovered));
            ("total", Json.Num (float_of_int total));
            ("majority", Json.Bool (majority r));
          ] );
    ]

let rule_specs (r : Pipeline.result) =
  List.filter_map Candidate.to_spec r.candidates

let record_metrics metrics (r : Pipeline.result) =
  let module M = Conferr_obsv.Metrics in
  let sut = r.evidence.sut_name in
  M.declare ~help:"Inferred constraint candidates kept, by kind and claim"
    metrics M.Counter "conferr_infer_candidates_total";
  M.declare ~help:"Hand-written rule ids (and unmatched candidates) by diff verdict"
    metrics M.Counter "conferr_infer_rule_diff_total";
  List.iter
    (fun (c : Candidate.t) ->
      M.inc
        ~labels:
          [
            ("claim", Rule.claim_label c.claim);
            ("kind", Candidate.kind_label c.kind);
            ("sut", sut);
          ]
        metrics "conferr_infer_candidates_total")
    r.candidates;
  List.iter
    (fun (rv : Differ.rule_verdict) ->
      M.inc
        ~labels:
          [
            ("sut", sut);
            ("verdict", Differ.verdict_label rv.rule_id r.diff);
          ]
        metrics "conferr_infer_rule_diff_total")
    r.diff.rules;
  List.iter
    (fun _ ->
      M.inc
        ~labels:[ ("sut", sut); ("verdict", "missed-by-hand") ]
        metrics "conferr_infer_rule_diff_total")
    r.diff.missed_by_hand

let dashboard_rows ~hand (r : Pipeline.result) =
  let cand_rows =
    List.map
      (fun (c : Candidate.t) ->
        {
          Conferr_obsv.Report.inf_id = c.id;
          inf_kind = Candidate.kind_label c.kind;
          inf_target = Candidate.target_string c;
          inf_doc = c.doc;
          inf_support = List.length c.support;
          inf_confidence = Candidate.confidence c;
          inf_verdict = candidate_verdict r c;
        })
      r.candidates
  in
  let doc_of id =
    match List.find_opt (fun (ru : Rule.t) -> ru.id = id) hand with
    | Some ru -> ru.doc
    | None -> ""
  in
  let rule_rows =
    List.filter_map
      (fun (rv : Differ.rule_verdict) ->
        let verdict = Differ.verdict_label rv.rule_id r.diff in
        if verdict = "recovered" then None
        else
          Some
            {
              Conferr_obsv.Report.inf_id = rv.rule_id;
              inf_kind = "hand-rule";
              inf_target = "-";
              inf_doc = doc_of rv.rule_id;
              inf_support = List.length rv.fired;
              inf_confidence = 0.;
              inf_verdict = verdict;
            })
      r.diff.rules
  in
  cand_rows @ rule_rows
