type result = {
  evidence : Evidence.t;
  tables : Table.t list;
  candidates : Candidate.t list;
  dropped : int;
  replay : Conferr_lint_replay.report;
  diff : Differ.t;
  thresholds : Confidence.thresholds;
}

let run ?jobs ?nearest ~sut ~rules ~scenarios ~entries ~base ~thresholds () =
  let evidence = Evidence.collect ?jobs ~sut ~scenarios ~entries ~base () in
  let tables = Table.build evidence.rows in
  let induced =
    Induce.candidates ~base tables @ Cooccur.candidates ~base evidence.rows
  in
  let kept = Confidence.filter thresholds induced in
  let dropped = List.length induced - List.length kept in
  let candidates = Confidence.assign_ids kept in
  let replay =
    Conferr_lint_replay.scan ?jobs ?nearest ~sut ~rules ~scenarios ~entries
      ~base ()
  in
  let diff = Differ.diff ~hand:rules ~replay ~candidates in
  { evidence; tables; candidates; dropped; replay; diff; thresholds }
