(** End-to-end inference pipeline (doc/infer.md):
    journal → evidence → tables → typed + co-occurrence candidates →
    confidence filter → replay-based rule diff.

    All parallel work (evidence extraction, the static replay) goes
    through {!Conferr_pool.map}, whose results land in input slots;
    every aggregation is first-appearance-ordered — the whole [result]
    and anything rendered from it is byte-identical for any [jobs]. *)

type result = {
  evidence : Evidence.t;
  tables : Table.t list;
  candidates : Candidate.t list;  (** kept, ids assigned *)
  dropped : int;                  (** induced but below thresholds *)
  replay : Conferr_lint_replay.report;
  diff : Differ.t;
  thresholds : Confidence.thresholds;
}

val run :
  ?jobs:int -> ?nearest:Conferr_lint.Checker.nearest -> sut:Suts.Sut.t ->
  rules:Conferr_lint.Rule.t list -> scenarios:Errgen.Scenario.t list ->
  entries:Conferr_exec.Journal.entry list -> base:Conftree.Config_set.t ->
  thresholds:Confidence.thresholds -> unit -> result
