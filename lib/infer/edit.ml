module Node = Conftree.Node
module Config_set = Conftree.Config_set

type kind =
  | Deleted
  | Inserted
  | Renamed of { from_ : string; to_ : string }
  | Value_changed of { from_ : string; to_ : string }
  | Changed

type t = {
  file : string;
  section : string;
  node_kind : string;
  name : string;
  kind : kind;
}

let kind_label = function
  | Deleted -> "deleted"
  | Inserted -> "inserted"
  | Renamed _ -> "renamed"
  | Value_changed _ -> "value-changed"
  | Changed -> "changed"

let edit ~file ~section (node : Node.t) kind =
  { file; section; node_kind = node.kind; name = node.name; kind }

(* Section scope for the children of [node]. *)
let child_section (node : Node.t) section =
  if node.kind = Node.kind_section then String.lowercase_ascii node.name
  else section

let rec diff_nodes ~file ~section acc (b : Node.t) (m : Node.t) =
  if Node.equal b m then acc
  else if b.kind = m.kind && b.name = m.name && b.value = m.value then
    (* same head: the difference is among the children *)
    diff_children ~file ~section:(child_section b section) acc b.children
      m.children
  else if b.kind = m.kind && b.children = m.children then
    if b.name <> m.name && b.value = m.value then
      edit ~file ~section b (Renamed { from_ = b.name; to_ = m.name }) :: acc
    else if b.name = m.name then
      edit ~file ~section b
        (Value_changed
           {
             from_ = Node.value_or ~default:"" b;
             to_ = Node.value_or ~default:"" m;
           })
      :: acc
    else edit ~file ~section b Changed :: acc
  else edit ~file ~section b Changed :: acc

and diff_children ~file ~section acc bs ms =
  match (bs, ms) with
  | [], [] -> acc
  | [], m :: mt ->
    diff_children ~file ~section (edit ~file ~section m Inserted :: acc) [] mt
  | b :: bt, [] ->
    diff_children ~file ~section (edit ~file ~section b Deleted :: acc) bt []
  | b :: bt, m :: mt ->
    if Node.equal b m then diff_children ~file ~section acc bt mt
    else if bt = ms then edit ~file ~section b Deleted :: acc
    else if bs = mt then edit ~file ~section m Inserted :: acc
    else
      let acc = diff_nodes ~file ~section acc b m in
      diff_children ~file ~section acc bt mt

let diff ~base ~mutated =
  let mutated_files = Config_set.to_list mutated in
  let acc =
    List.fold_left
      (fun acc (file, broot) ->
        match Config_set.find mutated file with
        | Some mroot -> diff_nodes ~file ~section:"" acc broot mroot
        | None -> edit ~file ~section:"" broot Deleted :: acc)
      [] (Config_set.to_list base)
  in
  let acc =
    List.fold_left
      (fun acc (file, mroot) ->
        if Config_set.find base file = None then
          edit ~file ~section:"" mroot Inserted :: acc
        else acc)
      acc mutated_files
  in
  List.rev acc
