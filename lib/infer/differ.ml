module Rule = Conferr_lint.Rule
module Finding = Conferr_lint.Finding
module Journal = Conferr_exec.Journal

type rule_verdict = {
  rule_id : string;
  claim : Rule.claim;
  fired : string list;
  matched : string list;
  contradicting : string list;
}

type t = {
  rules : rule_verdict list;
  recovered : string list;
  missed_by_inference : string list;
  contradicted : string list;
  missed_by_hand : string list;
  matches_of : (string * string list) list;
}

let lower = String.lowercase_ascii

let overlaps support fired = List.exists (fun id -> List.mem id fired) support

let file_ok (target : Rule.target) file =
  match target.in_file with None -> true | Some f -> f = file

(* Does candidate [c] match one concrete rule body sharing the id?
   Typed bodies match by shape + name; opaque bodies by evidence
   overlap. *)
let body_matches (c : Candidate.t) ~fired (rule : Rule.t) =
  match (rule.body, c.kind) with
  | Rule.Value v, Candidate.Value ->
    v.canon v.name = v.canon c.name && file_ok v.target c.file
  | Rule.Reference r, Candidate.Value ->
    r.canon r.name = r.canon c.name && file_ok r.target c.file
  | Rule.Required r, Candidate.Required ->
    lower r.name = lower c.name && r.file = c.file
  | Rule.Unknown u, Candidate.Unknown -> file_ok u.target c.file
  | Rule.Implies _, Candidate.Implies -> overlaps c.support fired
  | Rule.Check_set _, _ -> overlaps c.support fired
  | _ -> false

let diff ~hand ~(replay : Conferr_lint_replay.report) ~candidates =
  (* entry ids each hand rule id fires on, and each id's claim/severity
     (rules sharing an id share both) *)
  let ids = Suts.Lint_rules.ids hand in
  let fired_tbl : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  let outcome_tbl : (string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Conferr_lint_replay.row) ->
      let entry_id = r.entry.Journal.scenario_id in
      Hashtbl.replace outcome_tbl entry_id
        (Conferr.Outcome.label r.entry.Journal.outcome);
      let seen = ref [] in
      List.iter
        (fun (f : Finding.t) ->
          if not (List.mem f.rule_id !seen) then begin
            seen := f.rule_id :: !seen;
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt fired_tbl f.rule_id)
            in
            Hashtbl.replace fired_tbl f.rule_id (entry_id :: prev)
          end)
        r.findings)
    replay.rows;
  let fired id =
    List.rev (Option.value ~default:[] (Hashtbl.find_opt fired_tbl id))
  in
  let rules_of id = List.filter (fun (r : Rule.t) -> r.id = id) hand in
  let matches_of =
    List.map
      (fun (c : Candidate.t) ->
        let matched =
          List.filter
            (fun id ->
              List.exists (body_matches c ~fired:(fired id)) (rules_of id))
            ids
        in
        (c.Candidate.id, matched))
      candidates
  in
  let rules =
    List.map
      (fun id ->
        let rs = rules_of id in
        let claim =
          match rs with r :: _ -> r.Rule.claim | [] -> Rule.Unspecified
        in
        let severity =
          match rs with r :: _ -> r.Rule.severity | [] -> Finding.Info
        in
        let fired = fired id in
        let matched =
          List.filter_map
            (fun (cid, rids) -> if List.mem id rids then Some cid else None)
            matches_of
        in
        (* an agreement-claim error rule predicts a startup rejection;
           an entry it fires on that the SUT accepted silently refutes
           the claim *)
        let contradicting =
          if claim = Rule.Agreement && severity = Finding.Error then
            List.filter
              (fun e -> Hashtbl.find_opt outcome_tbl e = Some "ignored")
              fired
          else []
        in
        { rule_id = id; claim; fired; matched; contradicting })
      ids
  in
  {
    rules;
    recovered =
      List.filter_map
        (fun r ->
          if r.matched <> [] && r.contradicting = [] then Some r.rule_id
          else None)
        rules;
    missed_by_inference =
      List.filter_map
        (fun r ->
          if r.matched = [] && r.contradicting = [] then Some r.rule_id
          else None)
        rules;
    contradicted =
      List.filter_map
        (fun r -> if r.contradicting <> [] then Some r.rule_id else None)
        rules;
    missed_by_hand =
      List.filter_map
        (fun (cid, rids) -> if rids = [] then Some cid else None)
        matches_of;
    matches_of;
  }

let verdict_label id t =
  if List.mem id t.contradicted then "contradicted"
  else if List.mem id t.recovered then "recovered"
  else "missed-by-inference"
