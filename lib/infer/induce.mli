(** Typed candidate induction from evidence tables (doc/infer.md).

    Per table (one configured item), the observed (edit, outcome)
    pairs induce:

    - {b Value} (agreement): some mutated values were rejected at
      startup.  The value shape is read from the rejection messages
      when they state it — a "valid range" clause yields its exact
      [Int_range] bounds, "integer"/"boolean" wording yields the type —
      and otherwise falls back to an [Enum] over the values observed to
      be accepted (always including the stock value, so emitted rules
      lint the stock configuration clean).
    - {b Value} (gap): every mutated value was accepted — the item is
      validated by nothing; not expressible as a loadable rule, but
      evidence for the differ.
    - {b Required} (agreement/gap): deleting the item prevented
      startup, or was silently defaulted / broke a functional probe.
    - {b Unknown} (agreement/gap), grouped per (file, section, node
      kind): renamed items were rejected as unknown names, or unknown
      names were silently accepted; the vocabulary is mined from the
      stock configuration.

    Support counts observations consistent with the induced constraint,
    contradictions the inconsistent ones (a value the constraint calls
    invalid that the SUT accepted, a deleted "required" directive the
    SUT booted without); {!Candidate.confidence} is their ratio. *)

val candidates :
  base:Conftree.Config_set.t -> Table.t list -> Candidate.t list
(** Deterministic order: per-table [Value] then [Required] candidates
    in table order, then [Unknown] groups in first-appearance order. *)
