module Journal = Conferr_exec.Journal
module Signature = Conferr_exec.Signature

type row = {
  scenario_id : string;
  class_name : string;
  description : string;
  outcome : string;
  message : string;
  template : string;
  edits : Edit.t list;
}

type t = { sut_name : string; rows : row list; unmatched : string list }

let collect ?jobs ~sut ~scenarios ~entries ~base () =
  let by_id = Hashtbl.create (List.length scenarios * 2) in
  List.iter
    (fun (sc : Errgen.Scenario.t) ->
      if not (Hashtbl.mem by_id sc.id) then Hashtbl.add by_id sc.id sc)
    scenarios;
  let arr = Array.of_list entries in
  let rows =
    Conferr_pool.map ?jobs
      (fun _ (entry : Journal.entry) ->
        let message = Signature.outcome_message entry.outcome in
        let edits, matched =
          match Hashtbl.find_opt by_id entry.scenario_id with
          | None -> ([], false)
          | Some sc -> (
            match sc.apply base with
            | Error _ -> ([], true)
            | Ok mutated -> (Edit.diff ~base ~mutated, true))
        in
        ( {
            scenario_id = entry.scenario_id;
            class_name = entry.class_name;
            description = entry.description;
            outcome = Conferr.Outcome.label entry.outcome;
            message;
            template = Template.mine message;
            edits;
          },
          matched ))
      arr
  in
  let rows = Array.to_list rows in
  let unmatched =
    List.filter_map
      (fun (r, matched) -> if matched then None else Some r.scenario_id)
      rows
  in
  { sut_name = sut.Suts.Sut.sut_name; rows = List.map fst rows; unmatched }
