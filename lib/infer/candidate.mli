(** A mined constraint candidate (doc/infer.md).

    Candidates carry everything the differ and the report need: the
    typed constraint (as a serializable {!Conferr_lint.Rule_file.body}
    when it is expressible in the loadable subset), the evidence that
    supports and contradicts it, and the claim it makes about the SUT's
    validator ([Agreement] — backed by observed rejections; [Gap] —
    backed by observed silent acceptances). *)

type kind = Value | Required | Unknown | Implies

val kind_label : kind -> string
(** ["value"], ["required"], ["unknown"], ["implies"]. *)

type t = {
  id : string;  (** assigned by {!Confidence.assign_ids}; [""] before *)
  kind : kind;
  file : string;
  section : string;          (** [""] at top level *)
  name : string;             (** directive name; ["a+b"] for implies *)
  node_kind : string;
  doc : string;              (** one-line statement of the constraint *)
  severity : Conferr_lint.Finding.severity;
  claim : Conferr_lint.Rule.claim;
  spec : Conferr_lint.Rule_file.body option;
      (** [None] when not expressible in the loadable rule subset
          (e.g. a [Required] over zone-file records) *)
  support : string list;         (** supporting scenario ids, journal order *)
  contradictions : string list;  (** contradicting scenario ids *)
  templates : string list;       (** distinct backing templates, in order *)
}

val confidence : t -> float
(** [support / (support + contradictions)]; [0.] with no support. *)

val target_string : t -> string
(** ["file:name"] or ["file#section:name"]. *)

val to_spec : t -> Conferr_lint.Rule_file.spec option
(** The loadable rule, when the candidate is expressible. *)
