type key = { file : string; section : string; name : string }

type obs = { row : Evidence.row; edit : Edit.t }

type t = { key : key; display : string; node_kind : string; obs : obs list }

let target_string k =
  if k.section = "" then Printf.sprintf "%s:%s" k.file k.name
  else Printf.sprintf "%s#%s:%s" k.file k.section k.name

let usable_outcome = function
  | "startup" | "functional" | "ignored" -> true
  | _ -> false

let build rows =
  let tbl : (key, t) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (row : Evidence.row) ->
      if usable_outcome row.outcome then
        List.iter
          (fun (ed : Edit.t) ->
            if ed.name <> "" then begin
              let key =
                {
                  file = ed.file;
                  section = ed.section;
                  name = String.lowercase_ascii ed.name;
                }
              in
              match Hashtbl.find_opt tbl key with
              | Some t ->
                Hashtbl.replace tbl key { t with obs = { row; edit = ed } :: t.obs }
              | None ->
                order := key :: !order;
                Hashtbl.add tbl key
                  {
                    key;
                    display = ed.name;
                    node_kind = ed.node_kind;
                    obs = [ { row; edit = ed } ];
                  }
            end)
          row.edits)
    rows;
  List.rev_map
    (fun key ->
      let t = Hashtbl.find tbl key in
      { t with obs = List.rev t.obs })
    !order
