(** Per-ConfPath evidence tables (doc/infer.md).

    Evidence rows are grouped by the (file, enclosing section, node
    name) they mutated — one table per configured item, holding every
    observed (edit, outcome) pair in journal order.  Tables are the
    input to typed candidate induction ({!Induce}); their order (first
    appearance in the journal) is what makes the whole pipeline's
    output deterministic. *)

type key = {
  file : string;
  section : string;     (** lowercased, [""] at top level *)
  name : string;        (** lowercased node name *)
}

type obs = { row : Evidence.row; edit : Edit.t }

type t = {
  key : key;
  display : string;     (** the name as first seen (original case) *)
  node_kind : string;   (** node kind as first seen *)
  obs : obs list;       (** journal order *)
}

val build : Evidence.row list -> t list
(** One table per distinct key, in first-appearance order.  Rows whose
    outcome is ["n/a"] or ["crashed"] carry no validator evidence and
    are skipped; unnamed nodes (blank/comment lines) are skipped. *)

val target_string : key -> string
(** ["file:name"] or ["file#section:name"] for display. *)
