(** Evidence extraction: journal entries joined with typed mutation
    provenance (doc/infer.md).

    Each journal entry is matched back to its generating scenario by id
    (as [conferr gaps] does), the mutation is re-applied to the base
    configuration, and the base/mutant trees are diffed ({!Edit}) — so
    every observed outcome is attributed to the exact ConfPath the
    scenario touched, and its message is mined into a template
    ({!Template.mine}).  Rows come back in journal order and are
    byte-identical for any [jobs] value (the parallel map lands results
    in input slots). *)

type row = {
  scenario_id : string;
  class_name : string;
  description : string;
  outcome : string;   (** {!Conferr.Outcome.label} *)
  message : string;   (** raw outcome message *)
  template : string;  (** mined template of [message] *)
  edits : Edit.t list;
      (** what the scenario changed; empty when the mutation was
          inexpressible on this base *)
}

type t = {
  sut_name : string;
  rows : row list;  (** journal order *)
  unmatched : string list;
      (** journal entry ids with no regenerated scenario, in order *)
}

val collect :
  ?jobs:int -> sut:Suts.Sut.t -> scenarios:Errgen.Scenario.t list ->
  entries:Conferr_exec.Journal.entry list -> base:Conftree.Config_set.t ->
  unit -> t
