module Node = Conftree.Node
module Config_set = Conftree.Config_set
module Rule_file = Conferr_lint.Rule_file
module Finding = Conferr_lint.Finding
module Rule = Conferr_lint.Rule

(* ---------------------------------------------------------------- *)
(* Stock-configuration lookups *)

(* Every node of [root] with its enclosing section (lowercased, "" at
   top level), document order — the checker's scope model. *)
let sites root =
  let acc = ref [] in
  let rec go section (node : Node.t) =
    acc := (section, node) :: !acc;
    let section =
      if node.kind = Node.kind_section then String.lowercase_ascii node.name
      else section
    in
    List.iter (go section) node.children
  in
  go "" root;
  List.rev !acc

(* All stock values of an item, document order — an item can repeat in
   sibling sections of the same name (both [zone] blocks of named.conf
   carry a [file]), and the induced shape must accept every one. *)
let base_values base ~file ~section ~name =
  match Config_set.find base file with
  | None -> []
  | Some root ->
    List.filter_map
      (fun (sec, (n : Node.t)) ->
        if sec = section && String.lowercase_ascii n.name = name then
          Some (Node.value_or ~default:"" n)
        else None)
      (sites root)
    |> List.filter (fun v -> v <> "")

let vocabulary base ~file ~section ~node_kind =
  match Config_set.find base file with
  | None -> []
  | Some root ->
    List.filter_map
      (fun (sec, (n : Node.t)) ->
        if sec = section && n.kind = node_kind && n.name <> "" then Some n.name
        else None)
      (sites root)
    |> List.fold_left
         (fun acc n -> if List.mem n acc then acc else n :: acc)
         []
    |> List.rev

(* ---------------------------------------------------------------- *)
(* Shared helpers *)

let rejected (o : Table.obs) = o.row.outcome = "startup"
let accepted (o : Table.obs) =
  o.row.outcome = "ignored" || o.row.outcome = "functional"

let ids obs = List.map (fun (o : Table.obs) -> o.row.scenario_id) obs

let distinct_templates obs =
  List.fold_left
    (fun acc (o : Table.obs) ->
      if o.row.template = "" || List.mem o.row.template acc then acc
      else o.row.template :: acc)
    [] obs
  |> List.rev

let contains ~sub s =
  let ls = String.length sub and n = String.length s in
  let rec go i = i + ls <= n && (String.sub s i ls = sub || go (i + 1)) in
  ls > 0 && go 0

(* ---------------------------------------------------------------- *)
(* Value candidates *)

(* Mirror of Checker.check_vtype over the serializable vtypes: does the
   induced shape accept this value? *)
let eval_vspec vspec value =
  match vspec with
  | Rule_file.F_int_range (lo, hi) -> (
    match int_of_string_opt (String.trim value) with
    | Some n -> n >= lo && n <= hi
    | None -> false)
  | Rule_file.F_bool ->
    List.mem
      (String.lowercase_ascii (String.trim value))
      [ "on"; "off"; "true"; "false"; "yes"; "no"; "1"; "0" ]
  | Rule_file.F_enum { allowed; ci } ->
    let v = if ci then String.lowercase_ascii value else value in
    List.exists (fun a -> (if ci then String.lowercase_ascii a else a) = v) allowed

let vspec_doc = function
  | Rule_file.F_int_range (lo, hi) ->
    Printf.sprintf "an integer in [%d, %d]" lo hi
  | Rule_file.F_bool -> "a boolean word"
  | Rule_file.F_enum { allowed; _ } ->
    Printf.sprintf "one of {%s}" (String.concat ", " allowed)

let new_value (o : Table.obs) =
  match o.edit.kind with
  | Edit.Value_changed { to_; _ } -> Some to_
  | _ -> None

(* The value shape, mined from the rejection messages first (they state
   the constraint: ConfInLog's key observation), observed values as the
   fallback. *)
let induce_vspec ~stock ~failing ~valid_values =
  let failing_msgs = List.map (fun (o : Table.obs) -> o.row.message) failing in
  let low_msgs = List.map String.lowercase_ascii failing_msgs in
  let range_bounds =
    List.find_map
      (fun m ->
        if contains ~sub:"valid range" m || contains ~sub:"must be between" m
        then
          match Option.map Template.ints (Template.parenthesized m) with
          | Some (a :: b :: _) -> Some (min a b, max a b)
          | _ -> None
        else None)
      low_msgs
  in
  let mentions sub = List.exists (contains ~sub) low_msgs in
  let int_values =
    List.filter_map (fun v -> int_of_string_opt (String.trim v)) valid_values
  in
  match range_bounds with
  | Some (lo, hi) -> Rule_file.F_int_range (lo, hi)
  | None ->
    if mentions "boolean" then Rule_file.F_bool
    else if
      mentions "integer"
      && int_values <> []
      && List.length int_values = List.length valid_values
    then
      (* bounds from every value known good: the accepted mutations plus
         the stock value (the emitted rule must lint stock clean) *)
      let known =
        int_values
        @ List.filter_map (fun v -> int_of_string_opt (String.trim v)) stock
      in
      Rule_file.F_int_range
        ( List.fold_left min (List.hd known) known,
          List.fold_left max (List.hd known) known )
    else
      let allowed =
        List.fold_left
          (fun acc v -> if List.mem v acc then acc else v :: acc)
          []
          (stock @ valid_values)
        |> List.rev
      in
      Rule_file.F_enum { allowed; ci = true }

let value_candidate base (t : Table.t) =
  let vobs = List.filter (fun o -> new_value o <> None) t.obs in
  if vobs = [] then None
  else begin
    let failing = List.filter rejected vobs in
    let passing = List.filter accepted vobs in
    if failing = [] then
      if passing = [] then None
      else
        (* every mutated value accepted: nothing validates this item *)
        Some
          {
            Candidate.id = "";
            kind = Candidate.Value;
            file = t.key.file;
            section = t.key.section;
            name = t.display;
            node_kind = t.node_kind;
            doc =
              Printf.sprintf
                "mined: values of '%s' are accepted without validation (%d \
                 silent mutation(s))"
                t.display (List.length passing);
            severity = Finding.Warning;
            claim = Rule.Gap;
            spec = None;
            support = ids passing;
            contradictions = [];
            templates = distinct_templates passing;
          }
    else begin
      let stock =
        base_values base ~file:t.key.file ~section:t.key.section
          ~name:t.key.name
      in
      let valid_values = List.filter_map new_value passing in
      let vspec = induce_vspec ~stock ~failing ~valid_values in
      let support, contradictions =
        List.partition
          (fun o ->
            let v = Option.get (new_value o) in
            eval_vspec vspec v = accepted o)
          vobs
      in
      Some
        {
          Candidate.id = "";
          kind = Candidate.Value;
          file = t.key.file;
          section = t.key.section;
          name = t.display;
          node_kind = t.node_kind;
          doc =
            Printf.sprintf "mined: '%s' takes %s (%d rejection(s) observed)"
              t.display (vspec_doc vspec) (List.length failing);
          severity = Finding.Error;
          claim = Rule.Agreement;
          spec =
            (if t.node_kind = Node.kind_directive then
               Some
                 (Rule_file.F_value
                    {
                      file = Some t.key.file;
                      section = Some t.key.section;
                      name = t.key.name;
                      vspec;
                    })
             else None);
          support = ids support;
          contradictions = ids contradictions;
          templates = distinct_templates failing;
        }
    end
  end

(* ---------------------------------------------------------------- *)
(* Required candidates *)

let required_candidate (t : Table.t) =
  let dobs = List.filter (fun (o : Table.obs) -> o.edit.kind = Edit.Deleted) t.obs in
  if dobs = [] then None
  else begin
    let failed = List.filter rejected dobs in
    let silent = List.filter (fun (o : Table.obs) -> o.row.outcome = "ignored") dobs in
    let broken =
      List.filter (fun (o : Table.obs) -> o.row.outcome = "functional") dobs
    in
    let spec =
      if t.node_kind = Node.kind_directive then
        Some
          (Rule_file.F_required
             {
               file = t.key.file;
               section = Some t.key.section;
               name = t.key.name;
             })
      else None
    in
    let mk ~doc ~severity ~claim ~support ~contradictions ~templates =
      {
        Candidate.id = "";
        kind = Candidate.Required;
        file = t.key.file;
        section = t.key.section;
        name = t.display;
        node_kind = t.node_kind;
        doc;
        severity;
        claim;
        spec;
        support = ids support;
        contradictions = ids contradictions;
        templates = distinct_templates templates;
      }
    in
    if failed <> [] then
      Some
        (mk
           ~doc:
             (Printf.sprintf
                "mined: deleting '%s' prevents startup (%d rejection(s))"
                t.display (List.length failed))
           ~severity:Finding.Error ~claim:Rule.Agreement ~support:failed
           ~contradictions:(silent @ broken) ~templates:failed)
    else if broken <> [] then
      Some
        (mk
           ~doc:
             (Printf.sprintf
                "mined: deleting '%s' breaks the functional probe while \
                 startup still succeeds"
                t.display)
           ~severity:Finding.Warning ~claim:Rule.Gap ~support:(broken @ silent)
           ~contradictions:[] ~templates:broken)
    else if silent <> [] then
      Some
        (mk
           ~doc:
             (Printf.sprintf
                "mined: deleting '%s' is silently covered by a built-in \
                 default"
                t.display)
           ~severity:Finding.Warning ~claim:Rule.Gap ~support:silent
           ~contradictions:[] ~templates:silent)
    else None
  end

(* ---------------------------------------------------------------- *)
(* Unknown candidates, grouped per (file, section, node kind) *)

let unknown_candidates base (tables : Table.t list) =
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (t : Table.t) ->
      List.iter
        (fun (o : Table.obs) ->
          match o.edit.kind with
          | Edit.Renamed _ ->
            let key = (t.key.file, t.key.section, t.node_kind) in
            if not (Hashtbl.mem groups key) then begin
              order := key :: !order;
              Hashtbl.add groups key []
            end;
            Hashtbl.replace groups key (o :: Hashtbl.find groups key)
          | _ -> ())
        t.obs)
    tables;
  List.rev !order
  |> List.filter_map (fun ((file, section, node_kind) as key) ->
         let obs = List.rev (Hashtbl.find groups key) in
         let vocab = vocabulary base ~file ~section ~node_kind in
         let vocab_low = List.map String.lowercase_ascii vocab in
         let unknown_name (o : Table.obs) =
           match o.edit.kind with
           | Edit.Renamed { to_; _ } ->
             not (List.mem (String.lowercase_ascii to_) vocab_low)
           | _ -> false
         in
         let failing = List.filter rejected obs in
         let accepted_unknown =
           List.filter (fun o -> accepted o && unknown_name o) obs
         in
         let mk ~doc ~severity ~claim ~support ~contradictions =
           {
             Candidate.id = "";
             kind = Candidate.Unknown;
             file;
             section;
             name = "*";
             node_kind;
             doc;
             severity;
             claim;
             spec =
               Some
                 (Rule_file.F_unknown
                    {
                      file = Some file;
                      section = Some section;
                      node_kind;
                      vocabulary = vocab;
                      what = node_kind;
                    });
             support = ids support;
             contradictions = ids contradictions;
             templates = distinct_templates support;
           }
         in
         if failing <> [] then
           Some
             (mk
                ~doc:
                  (Printf.sprintf
                     "mined: unknown %s names in %s are rejected at startup \
                      (vocabulary: %d names)"
                     node_kind file (List.length vocab))
                ~severity:Finding.Error ~claim:Rule.Agreement ~support:failing
                ~contradictions:accepted_unknown)
         else if accepted_unknown <> [] then
           Some
             (mk
                ~doc:
                  (Printf.sprintf
                     "mined: unknown %s names in %s are accepted silently"
                     node_kind file)
                ~severity:Finding.Warning ~claim:Rule.Gap
                ~support:accepted_unknown ~contradictions:[])
         else None)

(* ---------------------------------------------------------------- *)

let candidates ~base tables =
  let per_table =
    List.concat_map
      (fun t ->
        List.filter_map Fun.id [ value_candidate base t; required_candidate t ])
      tables
  in
  per_table @ unknown_candidates base tables
