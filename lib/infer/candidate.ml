type kind = Value | Required | Unknown | Implies

let kind_label = function
  | Value -> "value"
  | Required -> "required"
  | Unknown -> "unknown"
  | Implies -> "implies"

type t = {
  id : string;
  kind : kind;
  file : string;
  section : string;
  name : string;
  node_kind : string;
  doc : string;
  severity : Conferr_lint.Finding.severity;
  claim : Conferr_lint.Rule.claim;
  spec : Conferr_lint.Rule_file.body option;
  support : string list;
  contradictions : string list;
  templates : string list;
}

let confidence c =
  let s = List.length c.support and x = List.length c.contradictions in
  if s = 0 then 0. else float_of_int s /. float_of_int (s + x)

let target_string c =
  if c.section = "" then Printf.sprintf "%s:%s" c.file c.name
  else Printf.sprintf "%s#%s:%s" c.file c.section c.name

let to_spec c =
  Option.map
    (fun body ->
      {
        Conferr_lint.Rule_file.id = c.id;
        severity = c.severity;
        doc = c.doc;
        claim = c.claim;
        body;
      })
    c.spec
