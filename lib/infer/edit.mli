(** Structural diff between a base configuration set and one mutant
    (doc/infer.md).

    A scenario's [apply] records {e how} it edits the tree only in its
    free-text description; re-deriving the edit from the trees gives
    the inference pipeline typed provenance — which file, which
    enclosing section, which named node, and whether the mutation
    deleted it, renamed it, or changed its value.  Mutants in a
    campaign are single-node edits, so the diff is a parallel walk that
    aligns children by structural equality and classifies the first
    disagreement at each level. *)

type kind =
  | Deleted
  | Inserted
  | Renamed of { from_ : string; to_ : string }
  | Value_changed of { from_ : string; to_ : string }
  | Changed
      (** any other single-node difference (kind change, simultaneous
          name+value change, unaligned sibling lists) *)

type t = {
  file : string;
  section : string;
      (** innermost enclosing section name, lowercased; [""] at top
          level — the same scope key the checker uses *)
  node_kind : string;  (** {!Conftree.Node.t.kind} of the base-side node *)
  name : string;       (** base-side node name (mutant-side for [Inserted]) *)
  kind : kind;
}

val diff :
  base:Conftree.Config_set.t -> mutated:Conftree.Config_set.t -> t list
(** Edits in document order, files in set order.  A file present in
    only one of the sets contributes a single [Deleted]/[Inserted] edit
    for its root. *)

val kind_label : kind -> string
(** ["deleted"], ["inserted"], ["renamed"], ["value-changed"],
    ["changed"]. *)
