module Node = Conftree.Node
module Config_set = Conftree.Config_set
module Rule_file = Conferr_lint.Rule_file

(* Stock directive names per file: lowercased -> display case. *)
let file_vocab base file =
  match Config_set.find base file with
  | None -> []
  | Some root ->
    Node.find_all (fun n -> n.Node.kind = Node.kind_directive) root
    |> List.fold_left
         (fun acc (_, (n : Node.t)) ->
           let low = String.lowercase_ascii n.name in
           if n.name = "" || List.mem_assoc low acc then acc
           else (low, n.name) :: acc)
         []
    |> List.rev

type group = {
  g_file : string;
  g_names : string list;  (* lowercased, sorted *)
  mutable g_support : string list;  (* reversed *)
  mutable g_templates : string list;  (* reversed *)
}

let candidates ~base rows =
  let vocab_cache = Hashtbl.create 8 in
  let vocab file =
    match Hashtbl.find_opt vocab_cache file with
    | Some v -> v
    | None ->
      let v = file_vocab base file in
      Hashtbl.add vocab_cache file v;
      v
  in
  let groups : (string * string list, group) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (row : Evidence.row) ->
      if
        (row.outcome = "startup" || row.outcome = "functional")
        && row.message <> ""
      then
        (* one mutated file per mutant in practice; fold over edits to
           stay total *)
        let files =
          List.fold_left
            (fun acc (e : Edit.t) ->
              if List.mem e.file acc then acc else e.file :: acc)
            [] row.edits
          |> List.rev
        in
        List.iter
          (fun file ->
            let mentioned =
              List.filter
                (fun (_, display) -> Template.mentions ~name:display row.message)
                (vocab file)
            in
            let mutated =
              List.filter_map
                (fun (e : Edit.t) ->
                  if e.file = file && e.name <> "" then
                    Some (String.lowercase_ascii e.name)
                  else None)
                row.edits
            in
            let mentioned_low = List.map fst mentioned in
            if
              List.length mentioned >= 2
              && mutated <> []
              && List.for_all (fun n -> List.mem n mentioned_low) mutated
            then begin
              let names = List.sort compare mentioned_low in
              let key = (file, names) in
              let g =
                match Hashtbl.find_opt groups key with
                | Some g -> g
                | None ->
                  let g =
                    {
                      g_file = file;
                      g_names = names;
                      g_support = [];
                      g_templates = [];
                    }
                  in
                  Hashtbl.add groups key g;
                  order := key :: !order;
                  g
              in
              g.g_support <- row.scenario_id :: g.g_support;
              if row.template <> "" && not (List.mem row.template g.g_templates)
              then g.g_templates <- row.template :: g.g_templates
            end)
          files)
    rows;
  List.rev !order
  |> List.map (fun key ->
         let g = Hashtbl.find groups key in
         let display =
           List.map
             (fun low ->
               match List.assoc_opt low (vocab g.g_file) with
               | Some d -> d
               | None -> low)
             g.g_names
         in
         {
           Candidate.id = "";
           kind = Candidate.Implies;
           file = g.g_file;
           section = "";
           name = String.concat "+" g.g_names;
           node_kind = Node.kind_directive;
           doc =
             Printf.sprintf
               "mined: {%s} are jointly constrained (%d co-failing \
                scenario(s))"
               (String.concat ", " display)
               (List.length g.g_support);
           severity = Conferr_lint.Finding.Info;
           claim = Conferr_lint.Rule.Agreement;
           spec =
             Some
               (Rule_file.F_implies_present
                  { file = Some g.g_file; section = None; names = display });
           support = List.rev g.g_support;
           contradictions = [];
           templates = List.rev g.g_templates;
         })
