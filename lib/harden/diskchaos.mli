(** Storage chaos: a seeded fault-injecting I/O shim (doc/harden.md).

    {!Chaos} storms the system under test; [Diskchaos] storms the
    tool's own storage layer.  It interposes on the tiny write-side
    I/O surface the journal uses ({!io}) and injects the faults a real
    disk serves up — torn writes, short writes, ENOSPC, dropped
    fsyncs, and a kill -9 at an exact byte offset — so the segmented
    journal's crash-consistency contract (fsck to clean, resume
    re-executes nothing durable; see [doc/exec.md]) is *tested*, not
    assumed.  [conferr chaos --disk] puts it under a live campaign.

    The shim is deliberately ignorant of what is being written: it
    lives below the journal codec, mangles byte strings, and never
    parses them.  Everything is driven by one seeded
    {!Conferr_util.Rng}, shared across files and domains under a
    mutex, so a given seed replays the same fault schedule for a given
    write sequence. *)

(** What the next faulty write does.  Every fault is something a real
    kernel/disk pair can do to an application that buffers, writes and
    fsyncs:

    - [Torn_write]: a strict prefix of the buffer reaches the disk and
      the write {e reports success} — the classic torn line that only
      CRC verification catches later.
    - [Short_write]: a strict prefix reaches the disk and the write
      raises [Sys_error] — the caller knows, the bytes are still torn.
    - [Enospc]: nothing is written; the write raises [Sys_error]
      ("No space left on device").
    - [Fsync_drop]: the write buffers normally but the next flush
      silently discards it — a lying fsync; the line is simply gone
      after a crash. *)
type fault = Torn_write | Short_write | Enospc | Fsync_drop

val fault_label : fault -> string
(** ["torn-write"], ["short-write"], ["enospc"], ["fsync-drop"] —
    metrics label values. *)

val all_faults : fault list

exception Killed of int
(** [Killed offset]: the simulated process death of {!settings.kill_at}.
    Raised by the write that crosses the configured global byte
    offset, after pushing exactly the bytes up to it; every later
    operation through the same wrapped {!io} raises it too (the
    process is dead).  The payload is the offset. *)

type settings = {
  seed : int;
  rate : float;  (** probability a write draws a fault from [faults] *)
  kill_at : int option;
      (** die at this cumulative byte offset, counted across every
          write through the wrapped {!io} — segment appends and
          manifest/checkpoint temp files alike — so a sweep over
          offsets also lands crash points {e inside} a manifest
          update, not just between journal lines *)
  faults : fault list;
}

val default_settings : settings
(** seed [0xD15C], rate [0.1], no kill point, every fault kind. *)

type stats

val injected : stats -> int
val by_fault : stats -> (fault * int) list
(** Injection counts in declaration order of {!fault}. *)

val killed : stats -> bool
(** The {!Killed} crash point fired. *)

val written_bytes : stats -> int
(** Bytes pushed through to the OS so far — the counter
    {!settings.kill_at} is measured against.  Measure a fault-free run
    (rate 0, [kill_at = None]) to learn the offset range to sweep. *)

(** {1 The I/O surface} *)

type file = {
  write : string -> unit;
  flush : unit -> unit;
  close : unit -> unit;  (** never raises *)
}

(** The write-side operations the journal needs.  [remove] and [mkdir]
    are best-effort (missing target / existing directory are not
    errors), mirroring the bare [Sys]/[Unix] calls {!real} wraps. *)
type io = {
  open_file : append:bool -> string -> file;
  rename : string -> string -> unit;
  remove : string -> unit;
  mkdir : string -> unit;
}

val real : io
(** The undisturbed operations ([open_out_gen], [Sys.rename], …) —
    what the journal uses when no chaos is configured. *)

val wrap : ?settings:settings -> ?metrics:Conferr_obsv.Metrics.t -> io -> io * stats
(** Interpose the fault injector on [io].  Faults strike the data path
    ([file.write] / [file.flush]); [rename]/[remove]/[mkdir] only
    check the kill switch, so metadata operations stay deterministic
    and the crash point remains the one knob that can land inside a
    manifest update.  With [metrics], declares and increments the
    [conferr_disk_faults_total] counter labelled by fault kind.
    Raises [Invalid_argument] when [faults] is empty and no [kill_at]
    is set — the wrap would be inert. *)
