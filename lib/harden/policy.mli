(** Per-tenant service policy (doc/serve.md).

    The hardening knobs grew up as per-run CLI flags ([--quorum],
    [--breaker], [--timeout], [--retries], [--fuel]); in service mode
    each submitted campaign carries its own copy of them, so one
    tenant's flaky SUT trips {e its} breaker and burns {e its} retry
    budget without touching its neighbours.  This module is the policy
    record plus its JSON codec and validation — the daemon folds a
    validated policy into {!Conferr_exec.Executor.settings} (that fold
    lives in [lib/serve]; this library sits below the executor). *)

type t = {
  jobs_cap : int;          (** max concurrently running scenarios of this
                               campaign on the shared pool (the
                               scheduler's [max_active]) *)
  quorum : int;            (** total attempts for crash-suspect outcomes;
                               1 disables re-voting *)
  breaker : int option;    (** consecutive-crash trip threshold per
                               (SUT × fault class) bucket; [None] off *)
  timeout_s : float option;(** per-scenario deadline; [None] off *)
  retries : int;           (** extra attempts after a timeout *)
  fuel : int option;       (** cooperative step budget per execution *)
}

val default : t
(** [{ jobs_cap = 1; quorum = 1; breaker = None; timeout_s = None;
      retries = 0; fuel = None }] — exactly the executor's defaults, so
    a bare submission behaves like a bare CLI run (the determinism
    contract depends on this). *)

val of_json : ?default:t -> Conferr_obsv.Json.t -> (t, string) result
(** Read the policy fields of a submission object ([jobs], [quorum],
    [breaker], [timeout], [retries], [fuel] — all optional, unknown
    members ignored so the same object can carry [sut]/[seed]).  Every
    present field is validated (positive counts, non-negative timeout);
    the first violation is the [Error]. *)

val to_json : t -> Conferr_obsv.Json.t
(** Full record, for echoing a campaign's effective policy in status
    responses.  [of_json (to_json p) = Ok p]. *)
