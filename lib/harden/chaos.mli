(** Chaos self-injection: a seeded SUT wrapper that randomly sabotages
    boot and test calls (doc/harden.md).

    The wrapper exercises the hardened executor against the crash
    taxonomy it claims to contain: uncaught exceptions (including
    [Stack_overflow] and [Out_of_memory]), hangs that only the watchdog
    can interrupt, fuel-burning allocation storms, and coin-flip
    nondeterminism that the quorum must out-vote.  One generator is
    shared by all workers, so outcomes under [--jobs N] are
    intentionally nondeterministic — the invariants that must survive
    are termination, exactly-once journaling and deterministic resume,
    not the outcomes themselves. *)

type fault =
  | Crash  (** raise Failure / Stack_overflow / Out_of_memory *)
  | Hang   (** sleep [hang_s], then fail — interruptible by the watchdog *)
  | Storm  (** allocate [storm_blocks] blocks, burning sandbox fuel *)
  | Flip   (** fail on a coin flip — the nondeterminism the quorum votes on *)

val fault_label : fault -> string

type settings = {
  seed : int;
  rate : float;        (** injection probability per boot/test call *)
  hang_s : float;      (** hang duration; keep above the campaign timeout *)
  storm_blocks : int;  (** allocations per storm *)
  faults : fault list; (** menu to draw from; must be non-empty *)
}

val default_settings : settings
(** rate 0.1, hang 30s, 500k blocks, all four faults. *)

type stats
(** Injection counters, updated as the wrapped SUT runs. *)

val injected : stats -> int

val by_fault : stats -> (fault * int) list
(** Sorted by fault constructor. *)

val wrap :
  ?settings:settings -> ?metrics:Conferr_obsv.Metrics.t -> Suts.Sut.t -> Suts.Sut.t * stats
(** [wrap sut] returns a SUT with the same name, files and default
    configuration whose [boot] (and the resulting instance's
    [run_tests]) may inject a fault first.  Raises [Invalid_argument]
    on an empty fault menu.  With [?metrics] every injection also bumps
    [conferr_chaos_injections_total{fault=…}] (doc/obsv.md). *)
