(** Exception containment around the SUT (doc/harden.md).

    [Engine.boot_and_test] folds a raising SUT into a startup/test
    failure *string*; the sandbox instead produces the first-class
    {!Conferr.Outcome.Crashed} classification — with cause, phase and
    backtrace — and additionally contains [Stack_overflow] /
    [Out_of_memory] and a cooperative fuel budget, so a runaway
    simulator cannot take its worker domain (or the campaign) down. *)

exception Out_of_fuel of int
(** Raised by {!tick} when the current call's budget runs out; the
    payload is the initial budget. *)

val tick : ?cost:int -> unit -> unit
(** Burn [cost] (default 1) units of the calling thread's fuel budget.
    A no-op when the caller is not running under {!boot_and_test} with a
    fuel budget — simulators can call it unconditionally. *)

val fuel_left : unit -> int option
(** Remaining budget of the calling thread, if one is installed. *)

val boot_and_test :
  ?fuel:int ->
  ?probe:Conferr_obsv.Span.probe ->
  Suts.Sut.t ->
  (string * string) list ->
  Conferr.Outcome.t
(** Sandboxed tail of the injection pipeline: boot the SUT on serialized
    files and run its functional tests.  Exceptions (including
    [Stack_overflow] and [Out_of_memory]) become
    [Crashed {cause; phase; backtrace}] instead of propagating; [fuel]
    installs a step budget that {!tick} burns.  [probe] (default
    {!Conferr_obsv.Span.null}, a no-op) marks the [Spawn] (boot), [Run]
    (tests + shutdown) and [Classify] phases for span tracing
    (doc/obsv.md). *)

val materialize :
  ?probe:Conferr_obsv.Span.probe ->
  sut:Suts.Sut.t ->
  base:Conftree.Config_set.t ->
  Errgen.Scenario.t ->
  ((string * string) list, string) result
(** Apply the mutation and serialize the faulty files — the head of the
    pipeline, with [Engine.run_scenario]'s exact [Not_applicable]
    messages on failure.  Used to rebuild the faulty files for a crash
    repro bundle.  [probe] marks the [Generate] and [Serialize]
    phases. *)

val run_scenario :
  ?fuel:int ->
  ?probe:Conferr_obsv.Span.probe ->
  sut:Suts.Sut.t ->
  base:Conftree.Config_set.t ->
  Errgen.Scenario.t ->
  Conferr.Outcome.t
(** Sandboxed [Engine.run_scenario]: identical classification for every
    scenario whose SUT returns normally, [Crashed] where the engine
    would have reported a crash as a failure string. *)
