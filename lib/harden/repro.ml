module Outcome = Conferr.Outcome
module Scenario = Errgen.Scenario

let quarantine_lock = Mutex.create ()

(* A scenario id is [a-z0-9-]+ by construction (relabel_ids), but the
   quarantine dir must stay safe even for hand-made ids. *)
let sanitize id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    id

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc contents)

let crash_report ~sut_name ~seed scenario crash =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
  add "scenario: %s\n" scenario.Scenario.id;
  add "class: %s\n" scenario.Scenario.class_name;
  add "description: %s\n" scenario.Scenario.description;
  add "sut: %s\n" sut_name;
  (match seed with Some s -> add "seed: %d\n" s | None -> ());
  add "cause: %s\n" (Outcome.cause_to_string crash.Outcome.cause);
  add "phase: %s\n" (Outcome.phase_label crash.Outcome.phase);
  if crash.Outcome.backtrace <> "" then
    add "backtrace:\n%s\n" crash.Outcome.backtrace;
  Buffer.contents b

let repro_command ~sut_name ~seed scenario =
  match seed with
  | Some s ->
    Printf.sprintf
      "conferr profile --sut %s --seed %d --only %s --timeout 5\n" sut_name s
      scenario.Scenario.id
  | None ->
    Printf.sprintf "conferr profile --sut %s --only %s --timeout 5\n" sut_name
      scenario.Scenario.id

(* Best effort by contract: a repro bundle that cannot be written must
   never take the campaign down with it. *)
let write ~dir ~sut ~base ?seed scenario crash =
  try
    let bundle = Filename.concat dir (sanitize scenario.Scenario.id) in
    mkdir_p bundle;
    write_file
      (Filename.concat bundle "crash.txt")
      (crash_report ~sut_name:sut.Suts.Sut.sut_name ~seed scenario crash);
    write_file
      (Filename.concat bundle "repro.sh")
      (repro_command ~sut_name:sut.Suts.Sut.sut_name ~seed scenario);
    (match Sandbox.materialize ~sut ~base scenario with
    | Ok files ->
      List.iter
        (fun (name, contents) ->
          write_file
            (Filename.concat bundle ("faulty-" ^ sanitize name))
            contents)
        files
    | Error msg ->
      write_file (Filename.concat bundle "materialize-error.txt") (msg ^ "\n"));
    Some bundle
  with _ -> None

let flaky_path dir = Filename.concat dir "flaky.txt"

let load_flaky dir =
  let path = flaky_path dir in
  if not (Sys.file_exists path) then []
  else
    try
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          let rec loop acc =
            match input_line ic with
            | line ->
              let line = String.trim line in
              loop (if line = "" then acc else line :: acc)
            | exception End_of_file -> List.rev acc
          in
          loop [])
    with _ -> []

let record_flaky ~dir ids =
  if ids <> [] then
    try
      Mutex.lock quarantine_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock quarantine_lock)
        (fun () ->
          mkdir_p dir;
          let known = load_flaky dir in
          let fresh =
            List.filter (fun id -> not (List.mem id known)) ids
            |> List.sort_uniq compare
          in
          if fresh <> [] then begin
            let oc =
              open_out_gen [ Open_append; Open_creat ] 0o644 (flaky_path dir)
            in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                List.iter (fun id -> output_string oc (id ^ "\n")) fresh)
          end)
    with _ -> ()
