module Json = Conferr_obsv.Json

type t = {
  jobs_cap : int;
  quorum : int;
  breaker : int option;
  timeout_s : float option;
  retries : int;
  fuel : int option;
}

let default =
  {
    jobs_cap = 1;
    quorum = 1;
    breaker = None;
    timeout_s = None;
    retries = 0;
    fuel = None;
  }

let ( let* ) = Result.bind

(* A member that is present must be a number satisfying [check]; 0 maps
   to [zero] for the opt-out knobs (breaker/fuel/timeout), so JSON —
   which has no option type — can switch them off explicitly. *)
let num_field obj name ~check ~msg k =
  match Json.member name obj with
  | None -> Ok None
  | Some v -> (
    match Json.num v with
    | Some f when check f -> Ok (Some (k f))
    | Some _ | None -> Error (Printf.sprintf "%s must be %s" name msg))

let pos_int f = Float.is_integer f && f >= 1.
let nonneg_int f = Float.is_integer f && f >= 0.

let of_json ?(default = default) obj =
  let field name ~check ~msg k fallback =
    let* v = num_field obj name ~check ~msg k in
    Ok (Option.value ~default:fallback v)
  in
  let* jobs_cap =
    field "jobs" ~check:pos_int ~msg:"a positive integer" int_of_float
      default.jobs_cap
  in
  let* quorum =
    field "quorum" ~check:pos_int ~msg:"a positive integer" int_of_float
      default.quorum
  in
  let* breaker =
    field "breaker" ~check:nonneg_int ~msg:"a non-negative integer (0 = off)"
      (fun f -> if f = 0. then None else Some (int_of_float f))
      default.breaker
  in
  let* timeout_s =
    field "timeout" ~check:(fun f -> f >= 0.) ~msg:"a non-negative number (0 = off)"
      (fun f -> if f = 0. then None else Some f)
      default.timeout_s
  in
  let* retries =
    field "retries" ~check:nonneg_int ~msg:"a non-negative integer" int_of_float
      default.retries
  in
  let* fuel =
    field "fuel" ~check:nonneg_int ~msg:"a non-negative integer (0 = off)"
      (fun f -> if f = 0. then None else Some (int_of_float f))
      default.fuel
  in
  Ok { jobs_cap; quorum; breaker; timeout_s; retries; fuel }

let to_json t =
  Json.Obj
    [
      ("jobs", Json.Num (float_of_int t.jobs_cap));
      ("quorum", Json.Num (float_of_int t.quorum));
      ( "breaker",
        Json.Num (float_of_int (Option.value ~default:0 t.breaker)) );
      ("timeout", Json.Num (Option.value ~default:0. t.timeout_s));
      ("retries", Json.Num (float_of_int t.retries));
      ("fuel", Json.Num (float_of_int (Option.value ~default:0 t.fuel)));
    ]
