module Rng = Conferr_util.Rng
module Metrics = Conferr_obsv.Metrics

type fault = Torn_write | Short_write | Enospc | Fsync_drop

let fault_label = function
  | Torn_write -> "torn-write"
  | Short_write -> "short-write"
  | Enospc -> "enospc"
  | Fsync_drop -> "fsync-drop"

let all_faults = [ Torn_write; Short_write; Enospc; Fsync_drop ]

exception Killed of int

type settings = {
  seed : int;
  rate : float;
  kill_at : int option;
  faults : fault list;
}

let default_settings =
  { seed = 0xD15C; rate = 0.1; kill_at = None; faults = all_faults }

type stats = {
  mutable injected : int;
  mutable by_fault : (fault * int) list;
  mutable was_killed : bool;
  mutable bytes : int;
}

let injected stats = stats.injected

let by_fault stats =
  List.sort (fun (a, _) (b, _) -> compare a b) stats.by_fault

let killed stats = stats.was_killed
let written_bytes stats = stats.bytes

type file = {
  write : string -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

type io = {
  open_file : append:bool -> string -> file;
  rename : string -> string -> unit;
  remove : string -> unit;
  mkdir : string -> unit;
}

let real =
  let open_file ~append path =
    let flags =
      if append then [ Open_wronly; Open_creat; Open_append; Open_binary ]
      else [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
    in
    let oc = open_out_gen flags 0o644 path in
    {
      write = (fun s -> output_string oc s);
      flush = (fun () -> flush oc);
      close = (fun () -> close_out_noerr oc);
    }
  in
  {
    open_file;
    rename = Sys.rename;
    remove = (fun p -> try Sys.remove p with Sys_error _ -> ());
    mkdir =
      (fun p ->
        try Unix.mkdir p 0o755 with
        | Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  }

let wrap ?(settings = default_settings) ?metrics io =
  if settings.faults = [] && settings.kill_at = None then
    invalid_arg "Diskchaos.wrap: no faults and no kill point — nothing to inject";
  (match metrics with
  | Some reg ->
    Metrics.declare reg Metrics.Counter "conferr_disk_faults_total"
      ~help:"Storage faults injected under the journal writer, by kind"
  | None -> ());
  let rng = Rng.create settings.seed in
  let lock = Mutex.create () in
  let stats = { injected = 0; by_fault = []; was_killed = false; bytes = 0 } in
  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> f ())
  in
  let bump fault =
    locked (fun () ->
        stats.injected <- stats.injected + 1;
        let n = try List.assoc fault stats.by_fault with Not_found -> 0 in
        stats.by_fault <- (fault, n + 1) :: List.remove_assoc fault stats.by_fault);
    match metrics with
    | Some reg ->
      Metrics.inc reg "conferr_disk_faults_total"
        ~labels:[ ("fault", fault_label fault) ]
    | None -> ()
  in
  let check_killed () =
    locked (fun () -> if stats.was_killed then raise (Killed (Option.value settings.kill_at ~default:0)))
  in
  (* Push bytes through to the OS, honouring the global kill point: the
     write that crosses it lands exactly the bytes up to the offset,
     flushes them (they are durable), and dies. *)
  let push (f : file) s =
    let cut =
      locked (fun () ->
          match settings.kill_at with
          | Some k when stats.bytes + String.length s >= k ->
            let keep = max 0 (k - stats.bytes) in
            stats.bytes <- k;
            stats.was_killed <- true;
            Some (keep, k)
          | _ ->
            stats.bytes <- stats.bytes + String.length s;
            None)
    in
    match cut with
    | Some (keep, k) ->
      f.write (String.sub s 0 keep);
      f.flush ();
      raise (Killed k)
    | None -> f.write s
  in
  let open_file ~append path =
    check_killed ();
    let f = io.open_file ~append path in
    (* Per-file pending buffer: a normal write buffers here and is
       pushed on flush, which is what makes [Fsync_drop] expressible
       (the next flush discards instead).  The journal flushes once
       per line, so granularity is one entry. *)
    let pending = Buffer.create 256 in
    let drop_next_flush = ref false in
    let flush_pending () =
      let p = Buffer.contents pending in
      Buffer.clear pending;
      if p <> "" then push f p
    in
    let write s =
      check_killed ();
      let fault =
        if settings.faults = [] then None
        else
          locked (fun () ->
              if Rng.float rng 1.0 < settings.rate then
                Some (Rng.pick rng settings.faults)
              else None)
      in
      match fault with
      | None -> Buffer.add_string pending s
      | Some Enospc ->
        bump Enospc;
        raise (Sys_error (path ^ ": No space left on device (injected)"))
      | Some Fsync_drop ->
        bump Fsync_drop;
        Buffer.add_string pending s;
        drop_next_flush := true
      | Some (Torn_write as fk) | Some (Short_write as fk) ->
        bump fk;
        let keep = locked (fun () -> Rng.int rng (max 1 (String.length s))) in
        flush_pending ();
        push f (String.sub s 0 keep);
        f.flush ();
        if fk = Short_write then
          raise (Sys_error (path ^ ": short write (injected)"))
    in
    let flush () =
      check_killed ();
      if !drop_next_flush then begin
        drop_next_flush := false;
        Buffer.clear pending
      end
      else begin
        flush_pending ();
        f.flush ()
      end
    in
    let close () =
      Buffer.clear pending;
      f.close ()
    in
    { write; flush; close }
  in
  let wrapped =
    {
      open_file;
      rename =
        (fun a b ->
          check_killed ();
          io.rename a b);
      remove =
        (fun p ->
          check_killed ();
          io.remove p);
      mkdir =
        (fun p ->
          check_killed ();
          io.mkdir p);
    }
  in
  (wrapped, stats)
