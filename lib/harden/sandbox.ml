module Outcome = Conferr.Outcome
module Engine = Conferr.Engine
module Scenario = Errgen.Scenario
module Span = Conferr_obsv.Span

exception Out_of_fuel of int

(* --------------------------------------------------------------- *)
(* Cooperative fuel                                                  *)
(* --------------------------------------------------------------- *)

(* Fuel cells are keyed by thread id: each sandboxed call runs in one
   thread (either a pool worker's own thread or the executor's timeout
   watchdog thread), and a watchdog thread abandoned by its timeout must
   keep burning its *own* fuel, not the budget of the scenario that
   replaced it. *)
let cells : (int, int ref * int) Hashtbl.t = Hashtbl.create 8

let cells_lock = Mutex.create ()

let with_lock f =
  Mutex.lock cells_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cells_lock) f

let current_cell () =
  let tid = Thread.id (Thread.self ()) in
  with_lock (fun () -> Hashtbl.find_opt cells tid)

let with_fuel fuel f =
  match fuel with
  | None -> f ()
  | Some budget ->
    let tid = Thread.id (Thread.self ()) in
    with_lock (fun () -> Hashtbl.replace cells tid (ref budget, budget));
    Fun.protect
      ~finally:(fun () -> with_lock (fun () -> Hashtbl.remove cells tid))
      f

let tick ?(cost = 1) () =
  match current_cell () with
  | None -> ()
  | Some (remaining, budget) ->
    remaining := !remaining - cost;
    if !remaining < 0 then raise (Out_of_fuel budget)

let fuel_left () =
  match current_cell () with
  | None -> None
  | Some (remaining, _) -> Some (max 0 !remaining)

(* --------------------------------------------------------------- *)
(* Exception containment                                             *)
(* --------------------------------------------------------------- *)

let backtraces =
  lazy
    ((* one-time switch so crash records carry a backtrace; cheap enough
        to leave on for the whole process *)
     Printexc.record_backtrace true)

let crashed ~phase cause =
  Outcome.Crashed { cause; phase; backtrace = Printexc.get_backtrace () }

let classify_exn ~phase = function
  | Stack_overflow -> crashed ~phase Outcome.Stack_overflow_crash
  | Out_of_memory -> crashed ~phase Outcome.Out_of_memory_crash
  | Out_of_fuel budget -> crashed ~phase (Outcome.Fuel_exhausted budget)
  | exn -> crashed ~phase (Outcome.Uncaught (Printexc.to_string exn))

(* The probe marks the pipeline phases for the observability layer
   (doc/obsv.md); [Span.null] makes every wrap a plain call, so the
   untraced path is unchanged. *)
let boot_and_test ?fuel ?(probe = Span.null) (sut : Suts.Sut.t) files =
  Lazy.force backtraces;
  with_fuel fuel (fun () ->
      match probe.Span.wrap Span.Spawn (fun () -> sut.Suts.Sut.boot files) with
      | exception exn -> classify_exn ~phase:Outcome.Boot exn
      | Error msg -> Outcome.Startup_failure msg
      | Ok instance ->
        (match
           probe.Span.wrap Span.Run (fun () ->
               let results = instance.Suts.Sut.run_tests () in
               (try instance.Suts.Sut.shutdown () with _ -> ());
               results)
         with
         | exception exn -> classify_exn ~phase:Outcome.Test exn
         | results ->
           probe.Span.wrap Span.Classify (fun () ->
               let failures =
                 List.filter_map
                   (fun (r : Suts.Sut.test_result) ->
                     if r.passed then None
                     else Some (Printf.sprintf "%s: %s" r.test_name r.detail))
                   results
               in
               if failures = [] then Outcome.Passed
               else Outcome.Test_failure failures)))

(* Mutation application and serialization classify exactly like
   [Engine.run_scenario], so sandboxed and classic campaigns agree on
   every scenario whose SUT behaves; only the boot/test tail differs. *)
let materialize ?(probe = Span.null) ~sut ~base (s : Scenario.t) =
  match probe.Span.wrap Span.Generate (fun () -> s.Scenario.apply base) with
  | exception exn ->
    Error (Printf.sprintf "scenario raised: %s" (Printexc.to_string exn))
  | Error msg -> Error msg
  | Ok mutated ->
    probe.Span.wrap Span.Serialize (fun () -> Engine.serialize_config sut mutated)

let run_scenario ?fuel ?probe ~sut ~base (s : Scenario.t) =
  match materialize ?probe ~sut ~base s with
  | Error msg -> Outcome.Not_applicable msg
  | Ok files -> boot_and_test ?fuel ?probe sut files
