(** Per-(SUT × fault class) circuit breaker with exponential backoff
    (doc/harden.md).

    After [threshold] consecutive harness-level crashes in one bucket
    the breaker opens: the next [backoff] scenarios of that bucket are
    classified as [Crashed (Breaker_open …)] without execution, then a
    single half-open probe runs; a probe that crashes again re-opens the
    breaker with a doubled window (capped), a success closes it and
    resets the backoff.  All operations are mutex-protected and safe to
    share across worker domains. *)

type t

type trip = {
  sut_name : string;
  class_name : string;
  trip_count : int;    (** times this bucket tripped *)
  skipped : int;       (** scenarios classified without execution *)
  consecutive : int;   (** crash streak at the end of the campaign *)
}

val create :
  ?threshold:int ->
  ?base_backoff:int ->
  ?max_backoff:int ->
  ?metrics:Conferr_obsv.Metrics.t ->
  unit ->
  t
(** Defaults: [threshold = 5] consecutive crashes, first skip window
    [base_backoff = 8] scenarios, windows capped at [max_backoff = 1024].
    With [?metrics] the breaker publishes its live per-bucket state as
    gauges ([conferr_breaker_consecutive] / [_backoff] / [_open],
    labeled [sut]/[class]); skip and trip {e counters} stay with the
    executor's progress events so a shared registry never
    double-counts (doc/obsv.md). *)

val admit : t -> sut_name:string -> class_name:string -> [ `Run | `Skip of string ]
(** Gate one scenario.  [`Skip bucket] means the breaker is open and the
    scenario must be classified without execution; the payload is the
    human-readable bucket name for [Outcome.Breaker_open]. *)

val note :
  t -> sut_name:string -> class_name:string -> crashed:bool ->
  [ `Counted | `Tripped of string ]
(** Record one executed scenario's fate.  Returns [`Tripped bucket] on
    the execution that opens (or re-opens) the breaker. *)

val trips : t -> trip list
(** Buckets that tripped at least once, sorted by (SUT, class). *)

val render_trip : trip -> string
(** One summary line for the campaign report. *)
