(** Flaky-run detection by re-execution and majority vote
    (doc/harden.md).

    An outcome flagged as nondeterminism-suspect ({!suspect}: any
    harness-level crash that was actually executed) is re-run K times;
    the majority label wins, and a disagreeing scenario is marked flaky
    so it can be journaled with all attempt outcomes and quarantined. *)

type verdict = {
  outcome : Conferr.Outcome.t;  (** majority representative *)
  attempts : Conferr.Outcome.t list;  (** every attempt, in order *)
  flaky : bool;  (** attempts disagreed on the outcome label *)
}

val suspect : Conferr.Outcome.t -> bool
(** Should this first outcome trigger a quorum?  True exactly for
    [Crashed] outcomes other than breaker skips (which were never
    executed, so re-running them proves nothing). *)

val vote : Conferr.Outcome.t list -> Conferr.Outcome.t
(** Majority by outcome label; ties break toward the earliest attempt,
    so the vote is deterministic in attempt order.  Raises
    [Invalid_argument] on the empty list. *)

val run : attempts:int -> (int -> Conferr.Outcome.t) -> verdict
(** [run ~attempts f] calls [f 0 .. f (attempts-1)] and votes.  Raises
    [Invalid_argument] when [attempts < 1]. *)
