module Outcome = Conferr.Outcome

type verdict = {
  outcome : Outcome.t;
  attempts : Outcome.t list;
  flaky : bool;
}

let suspect = function
  | Outcome.Crashed { cause = Outcome.Breaker_open _; _ } -> false
  | Outcome.Crashed _ -> true
  | Outcome.Startup_failure _ | Outcome.Test_failure _ | Outcome.Passed
  | Outcome.Not_applicable _ ->
    false

(* Majority by outcome label; ties go to the label seen first, so the
   vote is deterministic in the attempt order.  The representative
   outcome is the earliest attempt carrying the winning label (its
   messages are as good as any other member's). *)
let vote = function
  | [] -> invalid_arg "Quorum.vote: no attempts"
  | attempts ->
    let counts : (string, int) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun o ->
        let l = Outcome.label o in
        Hashtbl.replace counts l
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
      attempts;
    let winner, _ =
      List.fold_left
        (fun (best_label, best_count) o ->
          let l = Outcome.label o in
          let c = Hashtbl.find counts l in
          if c > best_count then (l, c) else (best_label, best_count))
        ("", 0) attempts
    in
    List.find (fun o -> Outcome.label o = winner) attempts

let run ~attempts f =
  if attempts < 1 then invalid_arg "Quorum.run: attempts must be >= 1";
  let outcomes = List.init attempts f in
  let labels = List.sort_uniq compare (List.map Outcome.label outcomes) in
  { outcome = vote outcomes; attempts = outcomes; flaky = List.length labels > 1 }
