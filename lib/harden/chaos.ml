module Rng = Conferr_util.Rng
module Sut = Suts.Sut

type fault = Crash | Hang | Storm | Flip

let fault_label = function
  | Crash -> "crash"
  | Hang -> "hang"
  | Storm -> "storm"
  | Flip -> "flip"

type settings = {
  seed : int;
  rate : float;
  hang_s : float;
  storm_blocks : int;
  faults : fault list;
}

let default_settings =
  {
    seed = 0xC405;
    rate = 0.1;
    hang_s = 30.0;
    storm_blocks = 500_000;
    faults = [ Crash; Hang; Storm; Flip ];
  }

type stats = { mutable injected : int; mutable by_fault : (fault * int) list }

let injected stats = stats.injected

let by_fault stats =
  List.sort (fun (a, _) (b, _) -> compare a b) stats.by_fault

let bump stats fault =
  stats.injected <- stats.injected + 1;
  let n = try List.assoc fault stats.by_fault with Not_found -> 0 in
  stats.by_fault <- (fault, n + 1) :: List.remove_assoc fault stats.by_fault

(* The crash menu covers the sandbox's whole taxonomy, including the
   asynchronous-looking ones it must specifically contain. *)
let raise_crash rng =
  match Rng.int rng 3 with
  | 0 -> failwith "chaos: injected crash"
  | 1 -> raise Stack_overflow
  | _ -> raise Out_of_memory

(* Touch memory and burn sandbox fuel so the storm is stoppable by
   either the fuel budget or the watchdog; without both it still
   terminates after [blocks] allocations. *)
let allocation_storm blocks =
  let sink = ref [] in
  for i = 0 to blocks - 1 do
    Sandbox.tick ();
    sink := Bytes.create 4096 :: !sink;
    if i land 0xFF = 0 then sink := []
  done;
  ignore (Sys.opaque_identity !sink)

let wrap ?(settings = default_settings) ?metrics sut =
  if settings.faults = [] then invalid_arg "Chaos.wrap: empty fault list";
  (match metrics with
  | Some reg ->
    Conferr_obsv.Metrics.declare reg Conferr_obsv.Metrics.Counter
      "conferr_chaos_injections_total"
      ~help:"Faults injected by the chaos wrapper, by kind"
  | None -> ());
  let rng = Rng.create settings.seed in
  let lock = Mutex.create () in
  let stats = { injected = 0; by_fault = [] } in
  (* Workers share one generator: chaos is intentionally nondeterministic
     under parallelism — that is the storm the quorum and journal must
     survive; determinism lives in the chaos-off path. *)
  let draw f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> f rng)
  in
  let inject () =
    let hit = draw (fun rng -> Rng.float rng 1.0 < settings.rate) in
    if hit then begin
      let fault = draw (fun rng -> Rng.pick rng settings.faults) in
      Mutex.lock lock;
      bump stats fault;
      Mutex.unlock lock;
      (match metrics with
      | Some reg ->
        Conferr_obsv.Metrics.inc reg "conferr_chaos_injections_total"
          ~labels:[ ("fault", fault_label fault) ]
      | None -> ());
      match fault with
      | Crash -> draw raise_crash
      | Hang ->
        Thread.delay settings.hang_s;
        failwith "chaos: injected hang expired"
      | Storm ->
        allocation_storm settings.storm_blocks;
        failwith "chaos: allocation storm survived"
      | Flip -> if draw Rng.bool then failwith "chaos: coin-flip failure"
    end
  in
  let boot files =
    inject ();
    match sut.Sut.boot files with
    | Error _ as e -> e
    | Ok instance ->
      Ok
        {
          Sut.run_tests =
            (fun () ->
              inject ();
              instance.Sut.run_tests ());
          shutdown = instance.Sut.shutdown;
        }
  in
  ({ sut with Sut.boot }, stats)
