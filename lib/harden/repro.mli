(** Minimal-repro bundles and the flaky quarantine list
    (doc/harden.md).

    Every crash the sandbox contains gets a directory under the
    campaign's quarantine dir holding the serialized faulty files, the
    crash classification (cause, phase, backtrace) and a one-line repro
    command; flaky scenario ids accumulate in [<dir>/flaky.txt], which
    [explore] reads to deprioritize them.  All writers are best-effort:
    an unwritable quarantine dir never fails the campaign. *)

val write :
  dir:string ->
  sut:Suts.Sut.t ->
  base:Conftree.Config_set.t ->
  ?seed:int ->
  Errgen.Scenario.t ->
  Conferr.Outcome.crash ->
  string option
(** Write [dir/<scenario-id>/{crash.txt,repro.sh,faulty-*}].  Returns
    the bundle path, or [None] if anything failed. *)

val flaky_path : string -> string
(** [flaky_path dir] is [dir/flaky.txt]. *)

val load_flaky : string -> string list
(** Scenario ids quarantined so far (one per line, blanks skipped);
    empty when the list does not exist or cannot be read. *)

val record_flaky : dir:string -> string list -> unit
(** Append the ids not already present, mutex-guarded against
    concurrent campaigns in the same process. *)
