type bucket = {
  mutable consecutive : int;  (* harness crashes since the last success *)
  mutable countdown : int;    (* scenarios still to skip while open *)
  mutable backoff : int;      (* width of the next skip window *)
  mutable skipped : int;
  mutable trips : int;
}

module Metrics = Conferr_obsv.Metrics

type t = {
  threshold : int;
  base_backoff : int;
  max_backoff : int;
  lock : Mutex.t;
  buckets : (string * string, bucket) Hashtbl.t;
  metrics : Metrics.t option;
}

type trip = {
  sut_name : string;
  class_name : string;
  trip_count : int;
  skipped : int;
  consecutive : int;
}

let create ?(threshold = 5) ?(base_backoff = 8) ?(max_backoff = 1024) ?metrics () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  {
    threshold;
    base_backoff = max 1 base_backoff;
    max_backoff = max 1 max_backoff;
    lock = Mutex.create ();
    buckets = Hashtbl.create 16;
    metrics;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bucket_of t key =
  match Hashtbl.find_opt t.buckets key with
  | Some b -> b
  | None ->
    let b =
      { consecutive = 0; countdown = 0; backoff = t.base_backoff; skipped = 0;
        trips = 0 }
    in
    Hashtbl.add t.buckets key b;
    b

let bucket_name (sut_name, class_name) = sut_name ^ " x " ^ class_name

(* Gauges only: the skip/trip *counters* are the executor's progress
   events (conferr_breaker_* in Progress), so a shared registry never
   double-counts.  These expose the live breaker state instead. *)
let publish t (sut_name, class_name) (b : bucket) =
  match t.metrics with
  | None -> ()
  | Some reg ->
    let labels = [ ("sut", sut_name); ("class", class_name) ] in
    Metrics.set reg "conferr_breaker_consecutive" ~labels (float_of_int b.consecutive);
    Metrics.set reg "conferr_breaker_backoff" ~labels (float_of_int b.backoff);
    Metrics.set reg "conferr_breaker_open" ~labels (float_of_int b.countdown)

let admit t ~sut_name ~class_name =
  let key = (sut_name, class_name) in
  with_lock t (fun () ->
      let b = bucket_of t key in
      if b.countdown > 0 then begin
        b.countdown <- b.countdown - 1;
        b.skipped <- b.skipped + 1;
        publish t key b;
        `Skip (bucket_name key)
      end
      else `Run)

let note t ~sut_name ~class_name ~crashed =
  let key = (sut_name, class_name) in
  with_lock t (fun () ->
      let b = bucket_of t key in
      let verdict =
        if crashed then begin
          b.consecutive <- b.consecutive + 1;
          if b.consecutive >= t.threshold && b.countdown = 0 then begin
            (* trip (or re-trip after a failed half-open probe): skip the
               next [backoff] scenarios of this bucket, then probe again
               with a doubled window queued behind it *)
            b.countdown <- b.backoff;
            b.backoff <- min (b.backoff * 2) t.max_backoff;
            b.trips <- b.trips + 1;
            `Tripped (bucket_name key)
          end
          else `Counted
        end
        else begin
          b.consecutive <- 0;
          b.countdown <- 0;
          b.backoff <- t.base_backoff;
          `Counted
        end
      in
      publish t key b;
      verdict)

let trips t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun (sut_name, class_name) b acc ->
          if b.trips = 0 then acc
          else
            {
              sut_name;
              class_name;
              trip_count = b.trips;
              skipped = b.skipped;
              consecutive = b.consecutive;
            }
            :: acc)
        t.buckets []
      |> List.sort (fun a b ->
             compare (a.sut_name, a.class_name) (b.sut_name, b.class_name)))

let render_trip tr =
  Printf.sprintf
    "%s x %s: tripped %d time%s after %d consecutive crashes, %d scenario%s \
     classified without execution"
    tr.sut_name tr.class_name tr.trip_count
    (if tr.trip_count = 1 then "" else "s")
    tr.consecutive tr.skipped
    (if tr.skipped = 1 then "" else "s")
