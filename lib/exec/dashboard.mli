(** Journal → dashboard adapter.

    {!Conferr_obsv.Report} deliberately sits at the bottom of the
    dependency stack and takes plain string/float rows; this module owns
    the one mapping from {!Journal.entry} (outcome variants, signature
    clustering) into those rows, shared by the CLI ([conferr report],
    [conferr gaps]) and the live daemon dashboard ([GET /dashboard],
    doc/serve.md). *)

val row_of_entry : Journal.entry -> Conferr_obsv.Report.row

val rows_of_entries : Journal.entry list -> Conferr_obsv.Report.row list
(** [List.map row_of_entry], preserving journal order (the dashboard's
    frontier timeline reads order as campaign progress). *)
