(** Multi-tenant domain-pool scheduler (doc/serve.md).

    Extracted from {!Conferr_pool.map} so that a long-lived process — the
    [conferr serve] daemon — can own {e one} pool of worker domains and
    multiplex work from several concurrent campaigns over it, instead of
    every campaign spawning (and tearing down) a private pool.

    The model: a scheduler owns [jobs] worker domains; clients register
    {e tenants} (one per campaign) and submit thunks to them.  Workers
    pick runnable tenants {b round-robin} — after serving tenant [T] the
    scan resumes {e after} [T] — so one full rotation of the tenant ring
    (an {e epoch}) serves every tenant that has queued work and spare
    concurrency.  No tenant can starve another, whatever their queue
    lengths.  Two knobs bound a tenant's appetite:

    - [max_active] caps how many of its tasks run concurrently (the
      per-campaign job cap), and
    - [queue_cap] bounds its submission queue; a full queue {e rejects}
      instead of growing, which is what the daemon turns into HTTP 429
      backpressure.

    Tasks are [unit -> unit] thunks and must do their own result
    plumbing; an escaping exception is caught, recorded as the tenant's
    first failure, and re-raised by {!wait}.  The scheduler is safe to
    drive from any mix of domains and systhreads. *)

type t
(** A pool of worker domains plus the tenant ring. *)

type tenant

val create : ?jobs:int -> unit -> t
(** Spawn the pool.  [jobs] (default 1) worker domains are started
    eagerly and live until {!shutdown}; values below 1 are clamped
    to 1. *)

val jobs : t -> int

val tenant : ?queue_cap:int -> ?max_active:int -> ?name:string -> t -> tenant
(** Register a tenant.  [queue_cap] bounds the submission queue
    (default: unbounded); [max_active] caps concurrently running tasks
    (default: the pool size); [name] is for diagnostics. *)

val tenant_name : tenant -> string

val submit : tenant -> (unit -> unit) -> [ `Queued | `Rejected ]
(** Enqueue one task.  [`Rejected] when the tenant's queue is full, the
    tenant was cancelled, or the scheduler is draining or shut down —
    the caller decides whether that is backpressure or a fatal race. *)

val pending : tenant -> int
(** Queued (not yet started) plus currently running tasks. *)

val cancel : tenant -> int
(** Drop every queued task of this tenant (running ones finish) and
    refuse further submissions.  Returns the number of tasks dropped. *)

val wait : tenant -> unit
(** Block until the tenant has no queued and no running tasks.  If any
    of its tasks raised, the first such exception is re-raised here
    (once — subsequent waits return normally). *)

val drain : t -> unit
(** Graceful stop: refuse new submissions, drop every {e queued} task of
    every tenant, wait for all {e running} tasks to finish, then stop
    and join the worker domains.  Tenant {!wait}ers are woken as their
    tenants empty.  Idempotent. *)

val shutdown : t -> unit
(** {!drain} under another name, for the one-shot [map] path where the
    queues are already empty. *)
