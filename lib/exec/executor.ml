module Engine = Conferr.Engine
module Outcome = Conferr.Outcome
module Profile = Conferr.Profile
module Scenario = Errgen.Scenario
module Sandbox = Conferr_harden.Sandbox
module Quorum = Conferr_harden.Quorum
module Breaker = Conferr_harden.Breaker
module Repro = Conferr_harden.Repro
module Clock = Conferr_obsv.Clock
module Trace = Conferr_obsv.Trace
module Metrics = Conferr_obsv.Metrics

type settings = {
  jobs : int;
  timeout_s : float option;
  retries : int;
  campaign_seed : int;
  journal_path : string option;
  segment_bytes : int option;
  journal_io : Conferr_harden.Diskchaos.io option;
  resume : bool;
  quorum : int;
  breaker : int option;
  quarantine_dir : string option;
  fuel : int option;
  trace : Trace.t option;
  metrics : Metrics.t option;
  tenant : Conferr_pool.Scheduler.tenant option;
}

let default_settings =
  {
    jobs = 1;
    timeout_s = None;
    retries = 0;
    campaign_seed = 42;
    journal_path = None;
    segment_bytes = None;
    journal_io = None;
    resume = false;
    quorum = 1;
    breaker = None;
    quarantine_dir = None;
    fuel = None;
    trace = None;
    metrics = None;
    tenant = None;
  }

let jobs_floor = 64

let clamp_jobs ?scenario_count jobs =
  if jobs <= 0 then
    Error
      (Printf.sprintf
         "--jobs must be at least 1, got %d (0 no longer means \"all cores\")"
         jobs)
  else
    let cap =
      match scenario_count with
      | Some n -> max jobs_floor n
      | None -> jobs_floor
    in
    if jobs > cap then
      Ok
        ( cap,
          Some
            (Printf.sprintf
               "clamping --jobs %d to %d (the campaign has no use for more \
                workers than max %d scenario-count)"
               jobs cap jobs_floor) )
    else Ok (jobs, None)

(* The CLI-facing --jobs grammar: a positive integer, or "auto" for the
   hardware-sized default.  Anything else is a usage error (exit 2 at
   the CLI layer); range checking stays in {!clamp_jobs}. *)
let parse_jobs text =
  match String.lowercase_ascii (String.trim text) with
  | "auto" -> Ok (Conferr_pool.recommended_jobs ())
  | s -> (
    match int_of_string_opt s with
    | Some n -> Ok n
    | None ->
      Error
        (Printf.sprintf "--jobs expects a positive integer or \"auto\", got %S"
           text))

(* SplitMix64 finalizer (Stafford mix13), as in Conferr_util.Rng. *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let scenario_seed ~campaign_seed id =
  let h = ref (Int64.mul (Int64.of_int campaign_seed) 0x9E3779B97F4A7C15L) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    id;
  mix64 !h

let timeout_crash ~timeout_s =
  Outcome.Crashed
    { cause = Outcome.Timeout timeout_s; phase = Outcome.Harness; backtrace = "" }

(* A crash that was actually executed (a breaker skip was not) counts
   toward the bucket's crash streak and deserves a repro bundle. *)
let executed_crash = function
  | Outcome.Crashed { cause = Outcome.Breaker_open _; _ } -> None
  | Outcome.Crashed c -> Some c
  | _ -> None

let run_from ?(settings = default_settings) ?(on_event = Progress.log_event) ~sut
    ~base ~scenarios () =
  let settings =
    match clamp_jobs ~scenario_count:(List.length scenarios) settings.jobs with
    | Ok (jobs, _) -> { settings with jobs }
    | Error _ -> { settings with jobs = 1 }
  in
  let arr = Array.of_list scenarios in
  let total = Array.length arr in
  (* Observability is inert unless asked for: with both [trace] and
     [metrics] at [None] no clock is created and the journal/profile
     bytes are identical to an unobserved run (doc/obsv.md). *)
  let observing = settings.trace <> None || settings.metrics <> None in
  (match settings.metrics with
   | None -> ()
   | Some reg ->
     Metrics.declare reg Metrics.Counter "conferr_scenario_outcomes_total"
       ~help:"Finished scenarios, by (SUT, fault class, outcome label)";
     Metrics.declare reg Metrics.Histogram "conferr_scenario_ms"
       ~help:"End-to-end wall milliseconds per scenario";
     Metrics.declare reg Metrics.Histogram "conferr_phase_ms"
       ~help:"Wall milliseconds per pipeline phase (doc/obsv.md)";
     Metrics.declare reg Metrics.Counter "conferr_quorum_attempts_total"
       ~help:"SUT executions behind finished scenarios (retries included)");
  let progress = Progress.create ?metrics:settings.metrics ~total () in
  let emit_lock = Mutex.create () in
  let emit ev =
    Progress.note progress ev;
    Mutex.lock emit_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock emit_lock) (fun () -> on_event ev)
  in
  let breaker =
    Option.map
      (fun threshold -> Breaker.create ~threshold ?metrics:settings.metrics ())
      settings.breaker
  in
  let flaky_lock = Mutex.create () in
  let flaky_ids = ref [] in
  let journaled : (string, Journal.entry) Hashtbl.t = Hashtbl.create 64 in
  (match settings.journal_path with
   | Some path when settings.resume ->
     List.iter
       (fun (e : Journal.entry) -> Hashtbl.replace journaled e.scenario_id e)
       (Journal.load path)
   | _ -> ());
  let resumed =
    Array.fold_left
      (fun n (s : Scenario.t) -> if Hashtbl.mem journaled s.id then n + 1 else n)
      0 arr
  in
  if resumed > 0 then emit (Progress.Resumed { count = resumed });
  let writer =
    Option.map
      (fun path ->
        Journal.open_append ~fresh:(not settings.resume)
          ?segment_bytes:settings.segment_bytes ?io:settings.journal_io path)
      settings.journal_path
  in
  let pending =
    Array.to_list arr
    |> List.mapi (fun i s -> (i, s))
    |> List.filter (fun (_, (s : Scenario.t)) -> not (Hashtbl.mem journaled s.id))
    |> Array.of_list
  in
  let run_one (index, (s : Scenario.t)) =
    emit (Progress.Started { index; id = s.id });
    let t0 = Unix.gettimeofday () in
    let attempts = ref 0 in
    let clock = if observing then Some (Clock.create ()) else None in
    let probe = Option.map Clock.probe clock in
    (* one sandboxed execution, watchdogged and retried; timeout
       exhaustion is a harness-phase crash, not a functional failure *)
    let execute () =
      match settings.timeout_s with
      | None ->
        incr attempts;
        Sandbox.run_scenario ?fuel:settings.fuel ?probe ~sut ~base s
      | Some timeout_s ->
        let rec attempt k =
          incr attempts;
          match
            Conferr_pool.with_timeout ~timeout_s (fun () ->
                Sandbox.run_scenario ?fuel:settings.fuel ?probe ~sut ~base s)
          with
          | Some outcome -> outcome
          | None ->
            emit (Progress.Timed_out { index; id = s.id; attempt = k });
            if k <= settings.retries then attempt (k + 1)
            else timeout_crash ~timeout_s
        in
        attempt 1
    in
    let admitted =
      match breaker with
      | None -> `Run
      | Some b -> Breaker.admit b ~sut_name:sut.Suts.Sut.sut_name ~class_name:s.class_name
    in
    let outcome, votes =
      match admitted with
      | `Skip bucket ->
        emit (Progress.Breaker_skipped { index; id = s.id; bucket });
        ( Outcome.Crashed
            { cause = Outcome.Breaker_open bucket; phase = Outcome.Harness;
              backtrace = "" },
          [] )
      | `Run ->
        let first = execute () in
        let verdict =
          if settings.quorum > 1 && Quorum.suspect first then
            Quorum.run ~attempts:settings.quorum (fun i ->
                if i = 0 then first else execute ())
          else { Quorum.outcome = first; attempts = [ first ]; flaky = false }
        in
        (match breaker with
         | None -> ()
         | Some b -> (
           match
             Breaker.note b ~sut_name:sut.Suts.Sut.sut_name
               ~class_name:s.class_name
               ~crashed:(executed_crash verdict.Quorum.outcome <> None)
           with
           | `Counted -> ()
           | `Tripped bucket -> emit (Progress.Breaker_tripped { bucket })));
        if verdict.Quorum.flaky then begin
          emit (Progress.Flaky { index; id = s.id; attempts = !attempts });
          Mutex.lock flaky_lock;
          flaky_ids := s.id :: !flaky_ids;
          Mutex.unlock flaky_lock;
          (verdict.Quorum.outcome, verdict.Quorum.attempts)
        end
        else (verdict.Quorum.outcome, [])
    in
    (match (executed_crash outcome, settings.quarantine_dir) with
     | Some crash, Some dir ->
       ignore
         (Repro.write ~dir ~sut ~base ~seed:settings.campaign_seed s crash)
     | _ -> ());
    let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let phase_ms = match clock with Some c -> Clock.phase_ms c | None -> [] in
    let entry =
      {
        Journal.scenario_id = s.id;
        class_name = s.class_name;
        description = s.description;
        seed = scenario_seed ~campaign_seed:settings.campaign_seed s.id;
        outcome;
        elapsed_ms;
        attempts = !attempts;
        votes;
        phase_ms;
      }
    in
    (match (settings.trace, clock) with
     | Some tr, Some c -> Trace.record tr ~id:s.id ~class_name:s.class_name c
     | _ -> ());
    (match settings.metrics with
     | None -> ()
     | Some reg ->
       (* label lists in canonical key order, the shared one built once:
          the registry's sortedness fast path then never re-allocates *)
       let sut_name = sut.Suts.Sut.sut_name in
       let class_sut = [ ("class", s.class_name); ("sut", sut_name) ] in
       Metrics.inc reg "conferr_scenario_outcomes_total"
         ~labels:
           [ ("class", s.class_name); ("outcome", Outcome.label outcome);
             ("sut", sut_name) ];
       Metrics.observe reg "conferr_scenario_ms" ~labels:class_sut elapsed_ms;
       List.iter
         (fun (phase, ms) ->
           Metrics.observe reg "conferr_phase_ms"
             ~labels:[ ("phase", phase); ("sut", sut_name) ]
             ms)
         phase_ms;
       if !attempts > 0 then
         Metrics.inc reg "conferr_quorum_attempts_total"
           ~by:(float_of_int !attempts) ~labels:class_sut);
    Option.iter (fun w -> Journal.append w entry) writer;
    emit
      (Progress.Finished
         { index; id = s.id; label = Outcome.label outcome; elapsed_ms });
    (index, entry)
  in
  let fresh =
    Fun.protect
      ~finally:(fun () -> Option.iter Journal.close writer)
      (fun () ->
        match settings.tenant with
        | None ->
          Conferr_pool.map ~jobs:settings.jobs (fun _ p -> run_one p) pending
        | Some tenant ->
          (* Service mode (doc/serve.md): scenarios are queued on a
             shared multi-campaign scheduler instead of a private pool.
             A cancel or daemon drain drops the queued remainder, so the
             result array may be partial — exactly like a resumed run
             whose journal only covers a prefix. *)
          let slots = Array.make (Array.length pending) None in
          Array.iteri
            (fun i p ->
              match
                Conferr_pool.Scheduler.submit tenant (fun () ->
                    slots.(i) <- Some (run_one p))
              with
              | `Queued | `Rejected -> ())
            pending;
          Conferr_pool.Scheduler.wait tenant;
          Array.of_list (List.filter_map Fun.id (Array.to_list slots)))
  in
  (match settings.quarantine_dir with
   | Some dir -> Repro.record_flaky ~dir !flaky_ids
   | None -> ());
  (* assemble the profile in scenario-list order, merging journaled and
     freshly-run entries, then checkpoint the compacted journal *)
  let slots = Array.make total None in
  Array.iter (fun (index, entry) -> slots.(index) <- Some entry) fresh;
  Array.iteri
    (fun i (s : Scenario.t) ->
      if slots.(i) = None then slots.(i) <- Hashtbl.find_opt journaled s.id)
    arr;
  let entries = List.filter_map Fun.id (Array.to_list slots) in
  Option.iter
    (fun path ->
      Journal.checkpoint ?io:settings.journal_io
        ?segment_bytes:settings.segment_bytes path entries)
    settings.journal_path;
  let profile_entries =
    List.map
      (fun (e : Journal.entry) ->
        {
          Profile.scenario_id = e.scenario_id;
          class_name = e.class_name;
          description = e.description;
          outcome = e.outcome;
        })
      entries
  in
  ( Profile.make ~sut_name:sut.Suts.Sut.sut_name profile_entries,
    Progress.snapshot progress )

let run ?settings ?on_event ~sut ~scenarios () =
  match Engine.parse_default_config sut with
  | Error message ->
    Error { Engine.sut_name = sut.Suts.Sut.sut_name; message }
  | Ok base -> Ok (run_from ?settings ?on_event ~sut ~base ~scenarios ())
