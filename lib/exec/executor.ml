module Engine = Conferr.Engine
module Outcome = Conferr.Outcome
module Profile = Conferr.Profile
module Scenario = Errgen.Scenario

type settings = {
  jobs : int;
  timeout_s : float option;
  retries : int;
  campaign_seed : int;
  journal_path : string option;
  resume : bool;
}

let default_settings =
  {
    jobs = 1;
    timeout_s = None;
    retries = 0;
    campaign_seed = 42;
    journal_path = None;
    resume = false;
  }

(* SplitMix64 finalizer (Stafford mix13), as in Conferr_util.Rng. *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let scenario_seed ~campaign_seed id =
  let h = ref (Int64.mul (Int64.of_int campaign_seed) 0x9E3779B97F4A7C15L) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    id;
  mix64 !h

let timeout_outcome ~timeout_s ~attempts =
  Outcome.Test_failure
    [
      Printf.sprintf "scenario timed out after %gs (%d attempt%s)" timeout_s attempts
        (if attempts = 1 then "" else "s");
    ]

let run_from ?(settings = default_settings) ?(on_event = Progress.log_event) ~sut
    ~base ~scenarios () =
  let arr = Array.of_list scenarios in
  let total = Array.length arr in
  let progress = Progress.create ~total in
  let emit_lock = Mutex.create () in
  let emit ev =
    Progress.note progress ev;
    Mutex.lock emit_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock emit_lock) (fun () -> on_event ev)
  in
  let journaled : (string, Journal.entry) Hashtbl.t = Hashtbl.create 64 in
  (match settings.journal_path with
   | Some path when settings.resume ->
     List.iter
       (fun (e : Journal.entry) -> Hashtbl.replace journaled e.scenario_id e)
       (Journal.load path)
   | _ -> ());
  let resumed =
    Array.fold_left
      (fun n (s : Scenario.t) -> if Hashtbl.mem journaled s.id then n + 1 else n)
      0 arr
  in
  if resumed > 0 then emit (Progress.Resumed { count = resumed });
  let writer =
    Option.map
      (fun path -> Journal.open_append ~fresh:(not settings.resume) path)
      settings.journal_path
  in
  let pending =
    Array.to_list arr
    |> List.mapi (fun i s -> (i, s))
    |> List.filter (fun (_, (s : Scenario.t)) -> not (Hashtbl.mem journaled s.id))
    |> Array.of_list
  in
  let run_one (index, (s : Scenario.t)) =
    emit (Progress.Started { index; id = s.id });
    let t0 = Unix.gettimeofday () in
    let outcome =
      match settings.timeout_s with
      | None -> Engine.run_scenario ~sut ~base s
      | Some timeout_s ->
        let rec attempt k =
          match
            Conferr_pool.with_timeout ~timeout_s (fun () ->
                Engine.run_scenario ~sut ~base s)
          with
          | Some outcome -> outcome
          | None ->
            emit (Progress.Timed_out { index; id = s.id; attempt = k });
            if k <= settings.retries then attempt (k + 1)
            else timeout_outcome ~timeout_s ~attempts:k
        in
        attempt 1
    in
    let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let entry =
      {
        Journal.scenario_id = s.id;
        class_name = s.class_name;
        description = s.description;
        seed = scenario_seed ~campaign_seed:settings.campaign_seed s.id;
        outcome;
        elapsed_ms;
      }
    in
    Option.iter (fun w -> Journal.append w entry) writer;
    emit
      (Progress.Finished
         { index; id = s.id; label = Outcome.label outcome; elapsed_ms });
    (index, entry)
  in
  let fresh =
    Fun.protect
      ~finally:(fun () -> Option.iter Journal.close writer)
      (fun () -> Conferr_pool.map ~jobs:settings.jobs (fun _ p -> run_one p) pending)
  in
  (* assemble the profile in scenario-list order, merging journaled and
     freshly-run entries, then checkpoint the compacted journal *)
  let slots = Array.make total None in
  Array.iter (fun (index, entry) -> slots.(index) <- Some entry) fresh;
  Array.iteri
    (fun i (s : Scenario.t) ->
      if slots.(i) = None then slots.(i) <- Hashtbl.find_opt journaled s.id)
    arr;
  let entries = List.filter_map Fun.id (Array.to_list slots) in
  Option.iter (fun path -> Journal.checkpoint path entries) settings.journal_path;
  let profile_entries =
    List.map
      (fun (e : Journal.entry) ->
        {
          Profile.scenario_id = e.scenario_id;
          class_name = e.class_name;
          description = e.description;
          outcome = e.outcome;
        })
      entries
  in
  ( Profile.make ~sut_name:sut.Suts.Sut.sut_name profile_entries,
    Progress.snapshot progress )

let run ?settings ?on_event ~sut ~scenarios () =
  match Engine.parse_default_config sut with
  | Error message ->
    Error { Engine.sut_name = sut.Suts.Sut.sut_name; message }
  | Ok base -> Ok (run_from ?settings ?on_event ~sut ~base ~scenarios ())
