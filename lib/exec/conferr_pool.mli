(** Fixed-size parallel worker pool over OCaml 5 domains.

    The campaign hot loop is a pure map: each fault scenario is applied,
    serialized, booted and tested independently of every other one, so a
    campaign shards trivially across domains.  This module provides that
    map while guaranteeing {e determinism}: results land in their input
    slot, so the output array is identical whatever the interleaving —
    [map ~jobs:4 f a] is byte-for-byte the same as [map ~jobs:1 f a].

    The module is deliberately generic (no dependency on the engine) so
    that [lib/core] can route its sequential path through the same
    scheduler without a dependency cycle. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], the hardware-sized default. *)

val map : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f a] computes [[| f 0 a.(0); ...; f (n-1) a.(n-1) |]].

    With [jobs <= 1] (the default) every call runs in the current domain
    in index order — the degenerate case is exactly the classic
    sequential loop.  With [jobs > 1], [min jobs (length a)] domains pull
    indices from a shared atomic counter; element results are written to
    distinct slots, so no synchronization beyond the counter is needed.

    If [f] raises, the first exception (in completion order) is
    re-raised in the caller's domain after all workers have stopped
    picking up new work. *)

val with_timeout : timeout_s:float -> (unit -> 'a) -> 'a option
(** [with_timeout ~timeout_s f] runs [f ()] in a watchdog thread and
    waits at most [timeout_s] seconds for it to finish: [Some r] on
    completion, [None] on timeout.  An exception in [f] is re-raised in
    the caller.

    On timeout the runaway thread is {e abandoned}, not killed (OCaml
    threads are not cancellable); the caller should classify the
    scenario and move on.  This bounds the damage of a pathological
    mutation to one leaked thread rather than a hung campaign. *)
