(** Fixed-size parallel worker pool over OCaml 5 domains.

    The campaign hot loop is a pure map: each fault scenario is applied,
    serialized, booted and tested independently of every other one, so a
    campaign shards trivially across domains.  This module provides that
    map while guaranteeing {e determinism}: results land in their input
    slot, so the output array is identical whatever the interleaving —
    [map ~jobs:4 f a] is byte-for-byte the same as [map ~jobs:1 f a].

    Since the service pass (doc/serve.md) the pool is a thin wrapper
    over {!Scheduler}, the multi-tenant layer that lets one domain pool
    serve several concurrent campaigns; [map] is the one-tenant special
    case.  The module is deliberately generic (no dependency on the
    engine) so that [lib/core] can route its sequential path through the
    same scheduler without a dependency cycle. *)

module Scheduler = Scheduler
(** The extracted multi-tenant scheduler; see [scheduler.mli]. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], the hardware-sized default.
    This is what [--jobs auto] resolves to (doc/exec.md). *)

val map : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f a] computes [[| f 0 a.(0); ...; f (n-1) a.(n-1) |]].

    With [jobs <= 1] (the default) every call runs in the current domain
    in index order — the degenerate case is exactly the classic
    sequential loop.  With [jobs > 1], a private {!Scheduler} with
    [min jobs (length a)] worker domains drains a single tenant holding
    every index; element results are written to distinct slots, so no
    synchronization beyond the scheduler's queue is needed.

    If [f] raises, the first exception (in completion order) wins,
    remaining elements are skipped, and it is re-raised in the caller's
    domain after all workers have stopped. *)

val with_timeout : timeout_s:float -> (unit -> 'a) -> 'a option
(** [with_timeout ~timeout_s f] runs [f ()] in a watchdog thread and
    waits at most [timeout_s] seconds for it to finish: [Some r] on
    completion, [None] on timeout.  An exception in [f] is re-raised in
    the caller.

    A worker that finishes in time is {b joined}, so the success path
    leaks nothing.  On timeout the runaway thread is {e abandoned}, not
    killed (OCaml threads are not cancellable); it is counted in
    {!abandoned_workers} until it eventually returns, and the caller's
    poll loop backs off exponentially (0.5 ms doubling to 20 ms) instead
    of spinning at a fixed 2 ms period.  This bounds the damage of a
    pathological mutation to one accounted-for thread rather than a hung
    campaign. *)

val abandoned_workers : unit -> int
(** Number of {!with_timeout} workers that overran their deadline and
    have not yet returned.  A campaign that times scenarios out leaves
    this at 0 once the abandoned scenarios finally finish — the
    regression test for the historical thread leak. *)
