type task = unit -> unit

type tenant = {
  tname : string;
  queue : task Queue.t;
  queue_cap : int option;
  max_active : int;
  mutable active : int;
  mutable cancelled : bool;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  sched : t;
}

and t = {
  lock : Mutex.t;
  work : Condition.t;  (* workers sleep here *)
  idle : Condition.t;  (* wait/drain callers sleep here *)
  mutable ring : tenant list;  (* scan order; rotated on every pick *)
  mutable draining : bool;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  pool_jobs : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let runnable tn =
  (not tn.cancelled) && tn.active < tn.max_active && not (Queue.is_empty tn.queue)

(* Pick the first runnable tenant and rotate the ring so the next scan
   starts just after it: served-last goes to the back, which is exactly
   round-robin fairness.  Caller holds the lock. *)
let pick t =
  let rec scan before = function
    | [] -> None
    | tn :: after ->
      if runnable tn then begin
        t.ring <- after @ List.rev_append before [ tn ];
        let task = Queue.pop tn.queue in
        tn.active <- tn.active + 1;
        Some (tn, task)
      end
      else scan (tn :: before) after
  in
  scan [] t.ring

let worker_loop t =
  let rec loop () =
    Mutex.lock t.lock;
    let next =
      let rec await () =
        if t.stopped then None
        else
          match pick t with
          | Some _ as p -> p
          | None ->
            Condition.wait t.work t.lock;
            await ()
      in
      await ()
    in
    Mutex.unlock t.lock;
    match next with
    | None -> ()
    | Some (tn, task) ->
      (match task () with
       | () -> ()
       | exception exn ->
         let bt = Printexc.get_raw_backtrace () in
         locked t (fun () ->
             if tn.failure = None then tn.failure <- Some (exn, bt)));
      locked t (fun () ->
          tn.active <- tn.active - 1;
          (* finishing may unblock this tenant's next queued task *)
          Condition.signal t.work;
          Condition.broadcast t.idle);
      loop ()
  in
  loop ()

let create ?(jobs = 1) () =
  let jobs = max 1 jobs in
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      ring = [];
      draining = false;
      stopped = false;
      workers = [];
      pool_jobs = jobs;
    }
  in
  t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.pool_jobs

let tenant ?queue_cap ?max_active ?(name = "tenant") t =
  let tn =
    {
      tname = name;
      queue = Queue.create ();
      queue_cap;
      max_active = (match max_active with Some n -> max 1 n | None -> t.pool_jobs);
      active = 0;
      cancelled = false;
      failure = None;
      sched = t;
    }
  in
  locked t (fun () -> t.ring <- t.ring @ [ tn ]);
  tn

let tenant_name tn = tn.tname

let submit tn task =
  let t = tn.sched in
  locked t (fun () ->
      if t.draining || t.stopped || tn.cancelled then `Rejected
      else
        match tn.queue_cap with
        | Some cap when Queue.length tn.queue >= cap -> `Rejected
        | _ ->
          Queue.push task tn.queue;
          Condition.signal t.work;
          `Queued)

let pending tn =
  locked tn.sched (fun () -> Queue.length tn.queue + tn.active)

let cancel tn =
  let t = tn.sched in
  locked t (fun () ->
      tn.cancelled <- true;
      let dropped = Queue.length tn.queue in
      Queue.clear tn.queue;
      Condition.broadcast t.idle;
      dropped)

let wait tn =
  let t = tn.sched in
  let failure =
    locked t (fun () ->
        while not (Queue.is_empty tn.queue) || tn.active > 0 do
          Condition.wait t.idle t.lock
        done;
        let f = tn.failure in
        tn.failure <- None;
        f)
  in
  match failure with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()

let drain t =
  let workers =
    locked t (fun () ->
        if not t.draining then begin
          t.draining <- true;
          List.iter (fun tn -> Queue.clear tn.queue) t.ring;
          Condition.broadcast t.idle
        end;
        while List.exists (fun tn -> tn.active > 0) t.ring do
          Condition.wait t.idle t.lock
        done;
        t.stopped <- true;
        Condition.broadcast t.work;
        let ws = t.workers in
        t.workers <- [];
        ws)
  in
  List.iter Domain.join workers

let shutdown = drain
