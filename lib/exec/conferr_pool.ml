let recommended_jobs () = Domain.recommended_domain_count ()

let map ?(jobs = 1) f a =
  let n = Array.length a in
  if n = 0 then [||]
  else if jobs <= 1 then Array.mapi f a
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (match f i a.(i) with
           | r -> results.(i) <- Some r
           | exception exn ->
             (* keep only the first failure; racing CAS losers drop theirs *)
             ignore
               (Atomic.compare_and_set failure None
                  (Some (exn, Printexc.get_raw_backtrace ()))));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      Array.init
        (min jobs n - 1)
        (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get failure with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
      Array.map
        (function
          | Some r -> r
          | None -> invalid_arg "Conferr_pool.map: worker aborted before completion")
        results
  end

let with_timeout ~timeout_s f =
  let cell = Atomic.make None in
  let (_ : Thread.t) =
    Thread.create
      (fun () ->
        let r = match f () with v -> Ok v | exception exn -> Error exn in
        Atomic.set cell (Some r))
      ()
  in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    match Atomic.get cell with
    | Some (Ok v) -> Some v
    | Some (Error exn) -> raise exn
    | None ->
      if Unix.gettimeofday () >= deadline then None
      else begin
        Thread.delay 0.002;
        wait ()
      end
  in
  wait ()
