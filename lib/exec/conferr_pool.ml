module Scheduler = Scheduler

let recommended_jobs () = Domain.recommended_domain_count ()

(* [map] is now a thin one-tenant wrapper over the extracted
   {!Scheduler} (doc/serve.md): the same worker-domain pool that the
   campaign daemon multiplexes many campaigns over also serves the
   one-shot CLI path, so there is exactly one scheduling code path to
   trust.  Semantics are unchanged: results land in their input slot,
   the first exception wins and aborts the remaining work, and
   [jobs <= 1] is the plain sequential loop. *)
let map ?(jobs = 1) f a =
  let n = Array.length a in
  if n = 0 then [||]
  else if jobs <= 1 then Array.mapi f a
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let sched = Scheduler.create ~jobs:(min jobs n) () in
    let tenant = Scheduler.tenant ~name:"map" sched in
    Fun.protect
      ~finally:(fun () -> Scheduler.shutdown sched)
      (fun () ->
        for i = 0 to n - 1 do
          ignore
            (Scheduler.submit tenant (fun () ->
                 if Atomic.get failure = None then
                   match f i a.(i) with
                   | r -> results.(i) <- Some r
                   | exception exn ->
                     (* keep only the first failure; racing CAS losers
                        drop theirs *)
                     ignore
                       (Atomic.compare_and_set failure None
                          (Some (exn, Printexc.get_raw_backtrace ())))))
        done;
        Scheduler.wait tenant);
    match Atomic.get failure with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
      Array.map
        (function
          | Some r -> r
          | None -> invalid_arg "Conferr_pool.map: worker aborted before completion")
        results
  end

(* ------------------------------------------------------------------ *)
(* Watchdogged execution                                               *)
(* ------------------------------------------------------------------ *)

(* One cell drives the whole race: the worker CASes [Running -> Done r];
   the caller, on deadline, CASes [Running -> Abandoned].  Whoever loses
   the CAS learns the other side won, so the abandoned-worker gauge is
   incremented exactly when a worker is left behind and decremented
   exactly once when that worker finally returns. *)
type 'a watchdog_state =
  | Running
  | Done of ('a, exn) result
  | Abandoned

let abandoned = Atomic.make 0

let abandoned_workers () = Atomic.get abandoned

let with_timeout ~timeout_s f =
  let state = Atomic.make Running in
  let worker =
    Thread.create
      (fun () ->
        let r = match f () with v -> Ok v | exception exn -> Error exn in
        if not (Atomic.compare_and_set state Running (Done r)) then
          (* the caller gave up on us; it already counted this thread *)
          Atomic.decr abandoned)
      ()
  in
  let finish r =
    Thread.join worker;
    match r with Ok v -> Some v | Error exn -> raise exn
  in
  let deadline = Unix.gettimeofday () +. timeout_s in
  (* Poll with exponential backoff (0.5 ms doubling to 20 ms, never past
     the deadline): short scenarios are detected almost immediately, and
     a caller stuck behind a long deadline no longer burns a 2 ms-period
     wakeup loop for the whole wait. *)
  let rec wait delay =
    match Atomic.get state with
    | Done r -> finish r
    | Abandoned -> assert false
    | Running ->
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then begin
        Atomic.incr abandoned;
        if Atomic.compare_and_set state Running Abandoned then None
        else begin
          (* the worker slipped in just under the wire *)
          Atomic.decr abandoned;
          match Atomic.get state with
          | Done r -> finish r
          | Running | Abandoned -> assert false
        end
      end
      else begin
        Thread.delay (Float.min delay remaining);
        wait (Float.min (delay *. 2.) 0.02)
      end
  in
  wait 0.0005
