module Outcome = Conferr.Outcome
module Profile = Conferr.Profile
module Texttable = Conferr_util.Texttable

type key = { class_name : string; label : string; message : string }

type cluster = {
  key : key;
  count : int;
  scenario_ids : string list;
  example : string;
}

let is_digit c = c >= '0' && c <= '9'

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_hex c = is_digit c || (c >= 'a' && c <= 'f')

let is_letter c = c >= 'a' && c <= 'z'

(* Size and duration suffixes commonly glued to a number in config
   error messages ("16M", "512kB", "30s", "5min"); a number plus one of
   these is a single volatile literal and masks as one [#]. *)
let unit_suffixes =
  [
    "kib"; "mib"; "gib"; "tib"; "min"; "kb"; "mb"; "gb"; "tb"; "ms"; "us";
    "ns"; "b"; "k"; "m"; "g"; "t"; "s"; "h"; "d";
  ]

let normalize s =
  let s = String.lowercase_ascii s in
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  (* longest run of [pred] starting at [j] *)
  let run_length pred j =
    let k = ref j in
    while !k < n && pred s.[!k] do incr k done;
    !k - j
  in
  let letter_run j = run_length is_letter j in
  while !i < n do
    let c = s.[!i] in
    if c = '"' || c = '\'' then begin
      (* mask the whole quoted span when it closes; otherwise keep the
         bare quote so an unbalanced message stays recognizable *)
      match String.index_from_opt s (!i + 1) c with
      | Some close ->
        Buffer.add_string buf "<q>";
        i := close + 1
      | None ->
        Buffer.add_char buf c;
        incr i
    end
    else if
      (* 0x-prefixed hexadecimal literal *)
      c = '0' && !i + 2 < n && s.[!i + 1] = 'x' && is_hex s.[!i + 2]
    then begin
      Buffer.add_char buf '#';
      i := !i + 2 + run_length is_hex (!i + 2)
    end
    else if
      (* bare hexadecimal run: >= 4 hex chars, at least one decimal
         digit (so plain words like "dead" survive), not the head of a
         longer identifier *)
      is_hex c
      && (let len = run_length is_hex !i in
          len >= 4
          && (!i + len >= n || not (is_letter s.[!i + len]))
          && String.exists is_digit (String.sub s !i len))
    then begin
      Buffer.add_char buf '#';
      i := !i + run_length is_hex !i
    end
    else if is_digit c then begin
      Buffer.add_char buf '#';
      while !i < n && is_digit s.[!i] do incr i done;
      (* decimal fraction is part of the same literal *)
      if !i + 1 < n && s.[!i] = '.' && is_digit s.[!i + 1] then begin
        incr i;
        while !i < n && is_digit s.[!i] do incr i done
      end;
      (* swallow a unit suffix so "16m" and "512kb" both mask as "#" *)
      let letters = letter_run !i in
      if letters > 0 && letters <= 3 then begin
        let suffix = String.sub s !i letters in
        if List.mem suffix unit_suffixes then i := !i + letters
      end
    end
    else if is_space c then begin
      Buffer.add_char buf ' ';
      while !i < n && is_space s.[!i] do incr i done
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  String.trim (Buffer.contents buf)

let outcome_message = function
  | Outcome.Startup_failure msg -> msg
  | Outcome.Test_failure msgs -> String.concat "; " msgs
  | Outcome.Passed -> ""
  | Outcome.Not_applicable msg -> msg
  (* cause + phase only: the backtrace is run-specific noise that would
     split one crash signature into many *)
  | Outcome.Crashed c -> Outcome.crash_summary c

let of_entry (e : Profile.entry) =
  {
    class_name = e.class_name;
    label = Outcome.label e.outcome;
    message = normalize (outcome_message e.outcome);
  }

let clusters entries =
  let tbl : (key, Profile.entry list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Profile.entry) ->
      let k = of_entry e in
      let members = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k (e :: members))
    entries;
  Hashtbl.fold
    (fun key members acc ->
      let members =
        List.sort
          (fun (a : Profile.entry) b -> compare a.scenario_id b.scenario_id)
          members
      in
      let example =
        match members with e :: _ -> e.description | [] -> ""
      in
      {
        key;
        count = List.length members;
        scenario_ids = List.map (fun (e : Profile.entry) -> e.scenario_id) members;
        example;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare b.count a.count with 0 -> compare a.key b.key | c -> c)

let render cs =
  let row c =
    [
      string_of_int c.count;
      c.key.class_name;
      c.key.label;
      (if c.key.message = "" then "-" else c.key.message);
      c.example;
    ]
  in
  Printf.sprintf "%d distinct failure signatures\n%s" (List.length cs)
    (Texttable.render
       ~aligns:[ Texttable.Right; Left; Left; Left; Left ]
       ~header:[ "count"; "fault class"; "outcome"; "signature"; "example" ]
       (List.map row cs))
