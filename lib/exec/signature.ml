module Outcome = Conferr.Outcome
module Profile = Conferr.Profile
module Texttable = Conferr_util.Texttable

type key = { class_name : string; label : string; message : string }

type cluster = {
  key : key;
  count : int;
  scenario_ids : string list;
  example : string;
}

let is_digit c = c >= '0' && c <= '9'

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let normalize s =
  let s = String.lowercase_ascii s in
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = '"' || c = '\'' then begin
      (* mask the whole quoted span when it closes; otherwise keep the
         bare quote so an unbalanced message stays recognizable *)
      match String.index_from_opt s (!i + 1) c with
      | Some close ->
        Buffer.add_string buf "<q>";
        i := close + 1
      | None ->
        Buffer.add_char buf c;
        incr i
    end
    else if is_digit c then begin
      Buffer.add_char buf '#';
      while !i < n && is_digit s.[!i] do
        incr i
      done
    end
    else if is_space c then begin
      Buffer.add_char buf ' ';
      while !i < n && is_space s.[!i] do
        incr i
      done
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  String.trim (Buffer.contents buf)

let outcome_message = function
  | Outcome.Startup_failure msg -> msg
  | Outcome.Test_failure msgs -> String.concat "; " msgs
  | Outcome.Passed -> ""
  | Outcome.Not_applicable msg -> msg

let of_entry (e : Profile.entry) =
  {
    class_name = e.class_name;
    label = Outcome.label e.outcome;
    message = normalize (outcome_message e.outcome);
  }

let clusters entries =
  let tbl : (key, Profile.entry list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Profile.entry) ->
      let k = of_entry e in
      let members = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k (e :: members))
    entries;
  Hashtbl.fold
    (fun key members acc ->
      let members =
        List.sort
          (fun (a : Profile.entry) b -> compare a.scenario_id b.scenario_id)
          members
      in
      let example =
        match members with e :: _ -> e.description | [] -> ""
      in
      {
        key;
        count = List.length members;
        scenario_ids = List.map (fun (e : Profile.entry) -> e.scenario_id) members;
        example;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare b.count a.count with 0 -> compare a.key b.key | c -> c)

let render cs =
  let row c =
    [
      string_of_int c.count;
      c.key.class_name;
      c.key.label;
      (if c.key.message = "" then "-" else c.key.message);
      c.example;
    ]
  in
  Printf.sprintf "%d distinct failure signatures\n%s" (List.length cs)
    (Texttable.render
       ~aligns:[ Texttable.Right; Left; Left; Left; Left ]
       ~header:[ "count"; "fault class"; "outcome"; "signature"; "example" ]
       (List.map row cs))
