module Metrics = Conferr_obsv.Metrics

let src = Logs.Src.create "conferr.exec" ~doc:"ConfErr campaign executor"

module Log = (val Logs.src_log src : Logs.LOG)

type event =
  | Started of { index : int; id : string }
  | Finished of { index : int; id : string; label : string; elapsed_ms : float }
  | Timed_out of { index : int; id : string; attempt : int }
  | Resumed of { count : int }
  | Flaky of { index : int; id : string; attempts : int }
  | Breaker_skipped of { index : int; id : string; bucket : string }
  | Breaker_tripped of { bucket : string }

(* The counters live in a metrics registry (doc/obsv.md) instead of a
   private record, so a campaign run with [--metrics] exports exactly
   the numbers the progress block prints — one source of truth. *)
type t = { total : int; t0 : float; reg : Metrics.t }

let m_started = "conferr_scenarios_started_total"
let m_finished = "conferr_scenarios_finished_total"
let m_resumed = "conferr_scenarios_resumed_total"
let m_timeouts = "conferr_timeouts_total"
let m_retries = "conferr_timeout_retries_total"
let m_flaky = "conferr_flaky_total"
let m_breaker_skipped = "conferr_breaker_skipped_total"
let m_breaker_trips = "conferr_breaker_trips_total"

let create ?metrics ~total () =
  let reg = match metrics with Some r -> r | None -> Metrics.create () in
  Metrics.declare reg Metrics.Counter m_started ~help:"Scenarios handed to a worker this run";
  Metrics.declare reg Metrics.Counter m_finished ~help:"Scenarios classified this run, by outcome label";
  Metrics.declare reg Metrics.Counter m_resumed ~help:"Scenarios restored from the journal, not re-run";
  Metrics.declare reg Metrics.Counter m_timeouts ~help:"Deadline overruns, including retried attempts";
  Metrics.declare reg Metrics.Counter m_retries ~help:"Re-runs after a timeout";
  Metrics.declare reg Metrics.Counter m_flaky ~help:"Scenarios whose quorum attempts disagreed";
  Metrics.declare reg Metrics.Counter m_breaker_skipped
    ~help:"Scenarios classified without execution while a breaker was open";
  Metrics.declare reg Metrics.Counter m_breaker_trips
    ~help:"Circuit-breaker trips, by (SUT x fault class) bucket";
  { total; t0 = Unix.gettimeofday (); reg }

let note t event =
  match event with
  | Started _ -> Metrics.inc t.reg m_started
  | Finished { label; _ } -> Metrics.inc t.reg m_finished ~labels:[ ("outcome", label) ]
  | Timed_out { attempt; _ } ->
    Metrics.inc t.reg m_timeouts;
    if attempt > 1 then Metrics.inc t.reg m_retries
  | Resumed { count } -> Metrics.inc t.reg m_resumed ~by:(float_of_int count)
  | Flaky _ -> Metrics.inc t.reg m_flaky
  | Breaker_skipped _ -> Metrics.inc t.reg m_breaker_skipped
  | Breaker_tripped { bucket } -> Metrics.inc t.reg m_breaker_trips ~labels:[ ("bucket", bucket) ]

type snapshot = {
  total : int;
  resumed : int;
  started : int;
  finished : int;
  timeouts : int;
  retries : int;
  flaky : int;
  breaker_skipped : int;
  by_label : (string * int) list;
  breaker_trips : (string * int) list;
  crashed : int;
  elapsed_s : float;
  rate : float;
}

let read t name = match Metrics.value t.reg name with Some v -> int_of_float v | None -> 0

let labeled t name key =
  List.filter_map
    (fun (labels, v) ->
      match List.assoc_opt key labels with
      | Some l -> Some (l, int_of_float v)
      | None -> None)
    (Metrics.family t.reg name)

let snapshot t =
  let elapsed_s = Unix.gettimeofday () -. t.t0 in
  let by_label = labeled t m_finished "outcome" in
  let finished = List.fold_left (fun acc (_, n) -> acc + n) 0 by_label in
  {
    total = t.total;
    resumed = read t m_resumed;
    started = read t m_started;
    finished;
    timeouts = read t m_timeouts;
    retries = read t m_retries;
    flaky = read t m_flaky;
    breaker_skipped = read t m_breaker_skipped;
    by_label;
    breaker_trips = labeled t m_breaker_trips "bucket";
    crashed = Option.value ~default:0 (List.assoc_opt "crashed" by_label);
    elapsed_s;
    rate = (if elapsed_s > 0. then float_of_int finished /. elapsed_s else 0.);
  }

(* The hardening lines only appear when their counters are nonzero, so a
   clean campaign renders exactly the block it always has. *)
let render s =
  let labels =
    if s.by_label = [] then "-"
    else
      String.concat ", "
        (List.map (fun (l, n) -> Printf.sprintf "%s %d" l n) s.by_label)
  in
  let extra =
    List.concat
      [
        (if s.flaky > 0 then
           [ Printf.sprintf "  flaky:     %d (quorum disagreed; quarantined)" s.flaky ]
         else []);
        (if s.breaker_skipped > 0 then
           [
             Printf.sprintf "  breaker:   %d scenario(s) skipped while open"
               s.breaker_skipped;
           ]
         else []);
        List.map
          (fun (bucket, n) ->
            Printf.sprintf "  breaker:   %s tripped %d time%s" bucket n
              (if n = 1 then "" else "s"))
          s.breaker_trips;
      ]
  in
  String.concat "\n"
    ([
       "Campaign execution";
       Printf.sprintf "  scenarios: %d total, %d run, %d resumed from journal"
         s.total s.finished s.resumed;
       Printf.sprintf "  outcomes:  %s" labels;
       Printf.sprintf "  timeouts:  %d (%d retried)" s.timeouts s.retries;
     ]
    @ extra
    @ [
        Printf.sprintf "  wall time: %.2fs (%.0f scenarios/s)" s.elapsed_s s.rate;
        "";
      ])

(* One JSON object per event, newline-free (the codec escapes to 7-bit
   ASCII), so the daemon can stream a campaign as JSON lines
   (doc/serve.md).  [ms] is wall-clock and therefore excluded from the
   determinism contract. *)
let event_to_json event =
  let module J = Conferr_obsv.Json in
  let obj kind fields = J.Obj (("event", J.Str kind) :: fields) in
  match event with
  | Started { index; id } ->
    obj "started" [ ("index", J.Num (float_of_int index)); ("id", J.Str id) ]
  | Finished { index; id; label; elapsed_ms } ->
    obj "finished"
      [
        ("index", J.Num (float_of_int index)); ("id", J.Str id);
        ("outcome", J.Str label); ("ms", J.Num elapsed_ms);
      ]
  | Timed_out { index; id; attempt } ->
    obj "timeout"
      [
        ("index", J.Num (float_of_int index)); ("id", J.Str id);
        ("attempt", J.Num (float_of_int attempt));
      ]
  | Resumed { count } -> obj "resumed" [ ("count", J.Num (float_of_int count)) ]
  | Flaky { index; id; attempts } ->
    obj "flaky"
      [
        ("index", J.Num (float_of_int index)); ("id", J.Str id);
        ("attempts", J.Num (float_of_int attempts));
      ]
  | Breaker_skipped { index; id; bucket } ->
    obj "breaker-skipped"
      [
        ("index", J.Num (float_of_int index)); ("id", J.Str id);
        ("bucket", J.Str bucket);
      ]
  | Breaker_tripped { bucket } ->
    obj "breaker-tripped" [ ("bucket", J.Str bucket) ]

let log_event = function
  | Started { index; id } -> Log.debug (fun m -> m "start %s (#%d)" id index)
  | Finished { id; label; elapsed_ms; _ } ->
    Log.debug (fun m -> m "done  %s [%s] %.2fms" id label elapsed_ms)
  | Timed_out { id; attempt; _ } ->
    Log.warn (fun m -> m "timeout %s (attempt %d)" id attempt)
  | Resumed { count } ->
    Log.info (fun m -> m "resumed %d scenario(s) from journal" count)
  | Flaky { id; attempts; _ } ->
    Log.warn (fun m -> m "flaky %s (%d attempts disagreed)" id attempts)
  | Breaker_skipped { id; bucket; _ } ->
    Log.warn (fun m -> m "breaker open: skipped %s [%s]" id bucket)
  | Breaker_tripped { bucket } ->
    Log.warn (fun m -> m "breaker tripped [%s]" bucket)
