let src = Logs.Src.create "conferr.exec" ~doc:"ConfErr campaign executor"

module Log = (val Logs.src_log src : Logs.LOG)

type event =
  | Started of { index : int; id : string }
  | Finished of { index : int; id : string; label : string; elapsed_ms : float }
  | Timed_out of { index : int; id : string; attempt : int }
  | Resumed of { count : int }

type t = {
  total : int;
  t0 : float;
  lock : Mutex.t;
  mutable resumed : int;
  mutable started : int;
  mutable finished : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable by_label : (string * int) list;
}

let create ~total =
  {
    total;
    t0 = Unix.gettimeofday ();
    lock = Mutex.create ();
    resumed = 0;
    started = 0;
    finished = 0;
    timeouts = 0;
    retries = 0;
    by_label = [];
  }

let bump_label counts label =
  let n = Option.value ~default:0 (List.assoc_opt label counts) in
  (label, n + 1) :: List.remove_assoc label counts

let note t event =
  Mutex.lock t.lock;
  (match event with
   | Started _ -> t.started <- t.started + 1
   | Finished { label; _ } ->
     t.finished <- t.finished + 1;
     t.by_label <- bump_label t.by_label label
   | Timed_out { attempt; _ } ->
     t.timeouts <- t.timeouts + 1;
     if attempt > 1 then t.retries <- t.retries + 1
   | Resumed { count } -> t.resumed <- t.resumed + count);
  Mutex.unlock t.lock

type snapshot = {
  total : int;
  resumed : int;
  started : int;
  finished : int;
  timeouts : int;
  retries : int;
  by_label : (string * int) list;
  elapsed_s : float;
  rate : float;
}

let snapshot t =
  Mutex.lock t.lock;
  let elapsed_s = Unix.gettimeofday () -. t.t0 in
  let s =
    {
      total = t.total;
      resumed = t.resumed;
      started = t.started;
      finished = t.finished;
      timeouts = t.timeouts;
      retries = t.retries;
      by_label = List.sort compare t.by_label;
      elapsed_s;
      rate = (if elapsed_s > 0. then float_of_int t.finished /. elapsed_s else 0.);
    }
  in
  Mutex.unlock t.lock;
  s

let render s =
  let labels =
    if s.by_label = [] then "-"
    else
      String.concat ", "
        (List.map (fun (l, n) -> Printf.sprintf "%s %d" l n) s.by_label)
  in
  String.concat "\n"
    [
      "Campaign execution";
      Printf.sprintf "  scenarios: %d total, %d run, %d resumed from journal"
        s.total s.finished s.resumed;
      Printf.sprintf "  outcomes:  %s" labels;
      Printf.sprintf "  timeouts:  %d (%d retried)" s.timeouts s.retries;
      Printf.sprintf "  wall time: %.2fs (%.0f scenarios/s)" s.elapsed_s s.rate;
      "";
    ]

let log_event = function
  | Started { index; id } -> Log.debug (fun m -> m "start %s (#%d)" id index)
  | Finished { id; label; elapsed_ms; _ } ->
    Log.debug (fun m -> m "done  %s [%s] %.2fms" id label elapsed_ms)
  | Timed_out { id; attempt; _ } ->
    Log.warn (fun m -> m "timeout %s (attempt %d)" id attempt)
  | Resumed { count } ->
    Log.info (fun m -> m "resumed %d scenario(s) from journal" count)
