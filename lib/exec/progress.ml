let src = Logs.Src.create "conferr.exec" ~doc:"ConfErr campaign executor"

module Log = (val Logs.src_log src : Logs.LOG)

type event =
  | Started of { index : int; id : string }
  | Finished of { index : int; id : string; label : string; elapsed_ms : float }
  | Timed_out of { index : int; id : string; attempt : int }
  | Resumed of { count : int }
  | Flaky of { index : int; id : string; attempts : int }
  | Breaker_skipped of { index : int; id : string; bucket : string }
  | Breaker_tripped of { bucket : string }

type t = {
  total : int;
  t0 : float;
  lock : Mutex.t;
  mutable resumed : int;
  mutable started : int;
  mutable finished : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable flaky : int;
  mutable breaker_skipped : int;
  mutable by_label : (string * int) list;
  mutable breaker_trips : (string * int) list;
}

let create ~total =
  {
    total;
    t0 = Unix.gettimeofday ();
    lock = Mutex.create ();
    resumed = 0;
    started = 0;
    finished = 0;
    timeouts = 0;
    retries = 0;
    flaky = 0;
    breaker_skipped = 0;
    by_label = [];
    breaker_trips = [];
  }

let bump_label counts label =
  let n = Option.value ~default:0 (List.assoc_opt label counts) in
  (label, n + 1) :: List.remove_assoc label counts

let note t event =
  Mutex.lock t.lock;
  (match event with
   | Started _ -> t.started <- t.started + 1
   | Finished { label; _ } ->
     t.finished <- t.finished + 1;
     t.by_label <- bump_label t.by_label label
   | Timed_out { attempt; _ } ->
     t.timeouts <- t.timeouts + 1;
     if attempt > 1 then t.retries <- t.retries + 1
   | Resumed { count } -> t.resumed <- t.resumed + count
   | Flaky _ -> t.flaky <- t.flaky + 1
   | Breaker_skipped _ -> t.breaker_skipped <- t.breaker_skipped + 1
   | Breaker_tripped { bucket } ->
     t.breaker_trips <- bump_label t.breaker_trips bucket);
  Mutex.unlock t.lock

type snapshot = {
  total : int;
  resumed : int;
  started : int;
  finished : int;
  timeouts : int;
  retries : int;
  flaky : int;
  breaker_skipped : int;
  by_label : (string * int) list;
  breaker_trips : (string * int) list;
  crashed : int;
  elapsed_s : float;
  rate : float;
}

let snapshot t =
  Mutex.lock t.lock;
  let elapsed_s = Unix.gettimeofday () -. t.t0 in
  let s =
    {
      total = t.total;
      resumed = t.resumed;
      started = t.started;
      finished = t.finished;
      timeouts = t.timeouts;
      retries = t.retries;
      flaky = t.flaky;
      breaker_skipped = t.breaker_skipped;
      by_label = List.sort compare t.by_label;
      breaker_trips = List.sort compare t.breaker_trips;
      crashed = Option.value ~default:0 (List.assoc_opt "crashed" t.by_label);
      elapsed_s;
      rate = (if elapsed_s > 0. then float_of_int t.finished /. elapsed_s else 0.);
    }
  in
  Mutex.unlock t.lock;
  s

(* The hardening lines only appear when their counters are nonzero, so a
   clean campaign renders exactly the block it always has. *)
let render s =
  let labels =
    if s.by_label = [] then "-"
    else
      String.concat ", "
        (List.map (fun (l, n) -> Printf.sprintf "%s %d" l n) s.by_label)
  in
  let extra =
    List.concat
      [
        (if s.flaky > 0 then
           [ Printf.sprintf "  flaky:     %d (quorum disagreed; quarantined)" s.flaky ]
         else []);
        (if s.breaker_skipped > 0 then
           [
             Printf.sprintf "  breaker:   %d scenario(s) skipped while open"
               s.breaker_skipped;
           ]
         else []);
        List.map
          (fun (bucket, n) ->
            Printf.sprintf "  breaker:   %s tripped %d time%s" bucket n
              (if n = 1 then "" else "s"))
          s.breaker_trips;
      ]
  in
  String.concat "\n"
    ([
       "Campaign execution";
       Printf.sprintf "  scenarios: %d total, %d run, %d resumed from journal"
         s.total s.finished s.resumed;
       Printf.sprintf "  outcomes:  %s" labels;
       Printf.sprintf "  timeouts:  %d (%d retried)" s.timeouts s.retries;
     ]
    @ extra
    @ [
        Printf.sprintf "  wall time: %.2fs (%.0f scenarios/s)" s.elapsed_s s.rate;
        "";
      ])

let log_event = function
  | Started { index; id } -> Log.debug (fun m -> m "start %s (#%d)" id index)
  | Finished { id; label; elapsed_ms; _ } ->
    Log.debug (fun m -> m "done  %s [%s] %.2fms" id label elapsed_ms)
  | Timed_out { id; attempt; _ } ->
    Log.warn (fun m -> m "timeout %s (attempt %d)" id attempt)
  | Resumed { count } ->
    Log.info (fun m -> m "resumed %d scenario(s) from journal" count)
  | Flaky { id; attempts; _ } ->
    Log.warn (fun m -> m "flaky %s (%d attempts disagreed)" id attempts)
  | Breaker_skipped { id; bucket; _ } ->
    Log.warn (fun m -> m "breaker open: skipped %s [%s]" id bucket)
  | Breaker_tripped { bucket } ->
    Log.warn (fun m -> m "breaker tripped [%s]" bucket)
