(** The campaign executor: parallel, resumable scenario execution.

    This is the production path for running a faultload (see
    [doc/exec.md]): it shards the scenario list across a fixed pool of
    worker domains ({!Conferr_pool}), journals every finished injection
    to an append-only JSONL file ({!Journal}), skips already-journaled
    scenarios on restart, guards each scenario with a timeout, and
    streams {!Progress} events.

    Determinism: profile entries are always assembled in scenario-list
    order and [Engine.run_scenario] is a pure function of the scenario,
    so for a fixed faultload the resulting {!Conferr.Profile.t} is
    identical for any [jobs] — [jobs = 1] {e is} the engine's classic
    sequential loop. *)

type settings = {
  jobs : int;
      (** worker domains; 1 = sequential in the calling domain *)
  timeout_s : float option;
      (** per-scenario deadline; [None] disables the watchdog *)
  retries : int;
      (** extra attempts after a timeout before classifying the
          scenario as a functional failure *)
  campaign_seed : int;
      (** campaign-level seed; each scenario derives its own journaled
          seed from it, independent of execution order *)
  journal_path : string option;
      (** JSONL journal location; [None] keeps results in memory only *)
  resume : bool;
      (** load [journal_path] and skip scenarios already recorded;
          when false an existing journal is truncated *)
}

val default_settings : settings
(** [{ jobs = 1; timeout_s = None; retries = 0; campaign_seed = 42;
      journal_path = None; resume = false }] *)

val scenario_seed : campaign_seed:int -> string -> int64
(** Deterministic per-scenario seed, a hash of the campaign seed and the
    scenario id — independent of scheduling, so parallel and sequential
    runs journal identical seeds. *)

val run_from :
  ?settings:settings ->
  ?on_event:(Progress.event -> unit) ->
  sut:Suts.Sut.t ->
  base:Conftree.Config_set.t ->
  scenarios:Errgen.Scenario.t list ->
  unit ->
  Conferr.Profile.t * Progress.snapshot
(** Execute the campaign against an already-parsed base configuration.
    [on_event] (default {!Progress.log_event}) is invoked under a lock,
    in completion order, from worker domains. *)

val run :
  ?settings:settings ->
  ?on_event:(Progress.event -> unit) ->
  sut:Suts.Sut.t ->
  scenarios:Errgen.Scenario.t list ->
  unit ->
  (Conferr.Profile.t * Progress.snapshot, Conferr.Engine.config_error) result
(** Like {!run_from} but parses the SUT's default configuration first;
    a SUT whose own default config does not parse is reported as
    [Error], never an exception. *)
