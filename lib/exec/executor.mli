(** The campaign executor: parallel, resumable scenario execution.

    This is the production path for running a faultload (see
    [doc/exec.md]): it shards the scenario list across a fixed pool of
    worker domains ({!Conferr_pool}), journals every finished injection
    to an append-only JSONL file ({!Journal}), skips already-journaled
    scenarios on restart, guards each scenario with a timeout, and
    streams {!Progress} events.

    Since the hardening pass (see [doc/harden.md]) each scenario runs
    inside {!Conferr_harden.Sandbox}, so a SUT that raises — including
    [Stack_overflow] and [Out_of_memory] — classifies as
    [Outcome.Crashed] instead of killing its worker; crash outcomes can
    be re-voted by a quorum, gated by a circuit breaker, and dumped as
    minimal-repro bundles into a quarantine directory.

    Determinism: profile entries are always assembled in scenario-list
    order and a sandboxed run is a pure function of the scenario for
    any SUT that does not crash, so for a fixed faultload the resulting
    {!Conferr.Profile.t} is identical for any [jobs] — [jobs = 1] {e is}
    the engine's classic sequential loop. *)

type settings = {
  jobs : int;
      (** worker domains; 1 = sequential in the calling domain.  Values
          outside [\[1; max 64 scenario-count\]] are clamped — see
          {!clamp_jobs} *)
  timeout_s : float option;
      (** per-scenario deadline; [None] disables the watchdog *)
  retries : int;
      (** extra attempts after a timeout before classifying the
          scenario as [Crashed (Timeout _)] *)
  campaign_seed : int;
      (** campaign-level seed; each scenario derives its own journaled
          seed from it, independent of execution order *)
  journal_path : string option;
      (** JSONL journal location; [None] keeps results in memory only *)
  segment_bytes : int option;
      (** write the journal as a v3 segmented store rotating segments
          at this byte bound (doc/exec.md); [None] keeps the
          single-file v2 layout unless [journal_path] already is a
          store *)
  journal_io : Conferr_harden.Diskchaos.io option;
      (** the storage layer under the journal writer; [None] is the
          real filesystem.  [conferr chaos --disk] passes a
          {!Conferr_harden.Diskchaos.wrap}ped one — a storage fault
          surfaces as {!Journal.Fault} and aborts the campaign (the
          journal stays repairable and resumable) *)
  resume : bool;
      (** load [journal_path] and skip scenarios already recorded;
          when false an existing journal is truncated *)
  quorum : int;
      (** total attempts for a nondeterminism-suspect (crashed) outcome;
          1 disables re-running.  Majority vote wins; disagreements are
          journaled as flaky with every attempt's outcome *)
  breaker : int option;
      (** consecutive-crash threshold per (SUT × fault class) bucket;
          once crossed, following bucket scenarios are classified as
          [Crashed (Breaker_open _)] without execution for an
          exponentially growing window.  [None] disables the breaker *)
  quarantine_dir : string option;
      (** where crash repro bundles and the flaky-id list are written;
          [None] disables both *)
  fuel : int option;
      (** cooperative step budget per execution
          ({!Conferr_harden.Sandbox.tick}); [None] = unlimited *)
  trace : Conferr_obsv.Trace.t option;
      (** span tracer: each scenario records its pipeline phases
          (generate/serialize/spawn/run/classify) for Chrome
          trace-event export; [None] (default) records nothing *)
  metrics : Conferr_obsv.Metrics.t option;
      (** metrics registry shared with {!Progress}, the breaker and the
          per-scenario outcome/latency families (doc/obsv.md); [None]
          (default) records nothing.  With either observer set, journal
          entries also carry per-phase wall times ([phase_ms]) *)
  tenant : Conferr_pool.Scheduler.tenant option;
      (** service mode (doc/serve.md): run scenarios as tasks of this
          tenant on a shared multi-campaign scheduler instead of a
          private [Conferr_pool.map] pool.  [jobs] is ignored (the
          scheduler owns the domain count); a cancel or drain drops the
          queued remainder and the campaign completes with a partial —
          but checkpointed and resumable — journal.  [None] (default)
          keeps the one-shot behaviour *)
}

val default_settings : settings
(** [{ jobs = 1; timeout_s = None; retries = 0; campaign_seed = 42;
      journal_path = None; segment_bytes = None; journal_io = None;
      resume = false; quorum = 1; breaker = None;
      quarantine_dir = None; fuel = None; trace = None;
      metrics = None; tenant = None }] — hardening, observability and
    service mode off by default, so existing callers behave exactly as
    before (profiles and journals are byte-identical to an unobserved
    run). *)

val clamp_jobs :
  ?scenario_count:int -> int -> (int * string option, string) result
(** Validate a requested worker count.  [jobs <= 0] is an [Error] (the
    CLI exits 2 on it); a value above [max 64 scenario-count] (64 when
    the count is unknown) clamps to the cap and returns a warning
    message.  {!run_from} applies the same clamp internally. *)

val parse_jobs : string -> (int, string) result
(** The CLI-facing [--jobs] grammar: a decimal integer, or ["auto"]
    (case-insensitive) for {!Conferr_pool.recommended_jobs}.  Any other
    text is an [Error] — the CLI exits 2 on it (doc/exec.md).  Range
    validation of the parsed number stays in {!clamp_jobs}. *)

val scenario_seed : campaign_seed:int -> string -> int64
(** Deterministic per-scenario seed, a hash of the campaign seed and the
    scenario id — independent of scheduling, so parallel and sequential
    runs journal identical seeds. *)

val run_from :
  ?settings:settings ->
  ?on_event:(Progress.event -> unit) ->
  sut:Suts.Sut.t ->
  base:Conftree.Config_set.t ->
  scenarios:Errgen.Scenario.t list ->
  unit ->
  Conferr.Profile.t * Progress.snapshot
(** Execute the campaign against an already-parsed base configuration.
    [on_event] (default {!Progress.log_event}) is invoked under a lock,
    in completion order, from worker domains. *)

val run :
  ?settings:settings ->
  ?on_event:(Progress.event -> unit) ->
  sut:Suts.Sut.t ->
  scenarios:Errgen.Scenario.t list ->
  unit ->
  (Conferr.Profile.t * Progress.snapshot, Conferr.Engine.config_error) result
(** Like {!run_from} but parses the SUT's default configuration first;
    a SUT whose own default config does not parse is reported as
    [Error], never an exception. *)
