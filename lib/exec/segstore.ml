module Diskchaos = Conferr_harden.Diskchaos

let manifest_name = "MANIFEST.json"
let default_segment_bytes = 1 lsl 20

type sealed = { name : string; lines : int; bytes : int; crc : int32 }

type manifest = {
  segment_bytes : int;
  sealed : sealed list;
  open_segments : string list;
}

(* ---- layout helpers ---- *)

let seg_prefix = "seg-"
let seg_suffix = ".jsonl"
let seg_name i = Printf.sprintf "seg-%06d.jsonl" i

let is_seg_name n =
  String.length n > String.length seg_prefix + String.length seg_suffix
  && String.starts_with ~prefix:seg_prefix n
  && String.ends_with ~suffix:seg_suffix n

let seg_index n =
  if not (is_seg_name n) then None
  else
    int_of_string_opt
      (String.sub n (String.length seg_prefix)
         (String.length n - String.length seg_prefix - String.length seg_suffix))

let segment_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    let segs = List.filter is_seg_name (Array.to_list names) in
    List.sort compare segs

let tmp_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    List.filter
      (fun n -> String.ends_with ~suffix:".tmp" n)
      (Array.to_list names)

let is_store path =
  Sys.file_exists path
  && Sys.is_directory path
  && (Sys.file_exists (Filename.concat path manifest_name)
     || segment_files path <> [])

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let count_lines s =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

(* ---- manifest codec ---- *)

let manifest_to_json m =
  Json.Obj
    [
      ("v", Json.Num 3.0);
      ("segment_bytes", Json.Num (float_of_int m.segment_bytes));
      ( "sealed",
        Json.Arr
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.Str s.name);
                   ("lines", Json.Num (float_of_int s.lines));
                   ("bytes", Json.Num (float_of_int s.bytes));
                   ("crc", Json.Str (Crc32.to_hex s.crc));
                 ])
             m.sealed) );
      ("open", Json.Arr (List.map (fun n -> Json.Str n) m.open_segments));
    ]

let sealed_of_json j =
  match
    ( Option.bind (Json.member "name" j) Json.str,
      Option.bind (Json.member "lines" j) Json.num,
      Option.bind (Json.member "bytes" j) Json.num,
      Option.bind (Option.bind (Json.member "crc" j) Json.str) Crc32.of_hex )
  with
  | Some name, Some lines, Some bytes, Some crc ->
    Some { name; lines = int_of_float lines; bytes = int_of_float bytes; crc }
  | _ -> None

let manifest_of_json j =
  match
    ( Option.bind (Json.member "v" j) Json.num,
      Option.bind (Json.member "segment_bytes" j) Json.num,
      Json.member "sealed" j,
      Json.member "open" j )
  with
  | Some v, Some sb, Some (Json.Arr sealed_js), Some opens_j when v = 3.0 ->
    let sealed = List.filter_map sealed_of_json sealed_js in
    let opens = Option.value (Json.str_list opens_j) ~default:[] in
    if List.length sealed <> List.length sealed_js then None
    else
      Some
        { segment_bytes = int_of_float sb; sealed; open_segments = opens }
  | _ -> None

let load_manifest dir =
  let path = Filename.concat dir manifest_name in
  if not (Sys.file_exists path) then None
  else
    match Json.of_string (read_file path) with
    | Error _ -> None
    | Ok j -> manifest_of_json j

let write_manifest (io : Diskchaos.io) dir m =
  let path = Filename.concat dir manifest_name in
  let tmp = path ^ ".tmp" in
  let f = io.open_file ~append:false tmp in
  Fun.protect
    ~finally:(fun () -> f.close ())
    (fun () ->
      f.write (Json.to_string (manifest_to_json m));
      f.write "\n";
      f.flush ());
  io.rename tmp path

let seal_of_file dir name =
  let data = read_file (Filename.concat dir name) in
  {
    name;
    lines = count_lines data;
    bytes = String.length data;
    crc = Crc32.string data;
  }

(* ---- reading ---- *)

type standing = Sealed_as of sealed | Open | Orphan

let segments dir =
  let on_disk = segment_files dir in
  match load_manifest dir with
  | None -> List.map (fun n -> (n, Open)) on_disk
  | Some m ->
    let sealed = List.map (fun s -> (s.name, Sealed_as s)) m.sealed in
    let opens = List.map (fun n -> (n, Open)) m.open_segments in
    let listed = List.map fst sealed @ List.map fst opens in
    let orphans =
      List.filter (fun n -> not (List.mem n listed)) on_disk
      |> List.map (fun n -> (n, Orphan))
    in
    sealed @ opens @ orphans

let logical_segments dir =
  List.filter_map
    (fun (n, standing) -> if standing = Orphan then None else Some n)
    (segments dir)

let read_text dir =
  String.concat ""
    (List.map (fun n -> read_file (Filename.concat dir n)) (logical_segments dir))

let read_lines dir =
  let split text =
    match String.split_on_char '\n' text with
    | [] -> []
    | parts -> (
      match List.rev parts with
      | "" :: rest -> List.rev rest
      | _ -> parts)
  in
  List.concat_map
    (fun n -> split (read_file (Filename.concat dir n)))
    (logical_segments dir)

(* ---- writing ---- *)

type seg_writer = {
  wlock : Mutex.t;
  mutable file : Diskchaos.file;
  mutable seg : string;
  mutable written : int;
}

type t = {
  dir : string;
  io : Diskchaos.io;
  slock : Mutex.t;  (** manifest + writer table + segment counter *)
  writers : (int, seg_writer) Hashtbl.t;
  mutable man : manifest;
  mutable next_seg : int;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let mkdir_p (io : Diskchaos.io) dir =
  let rec up d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      up (Filename.dirname d);
      io.mkdir d
    end
  in
  up dir

let next_index dir =
  1
  + List.fold_left
      (fun acc n -> match seg_index n with Some i -> max acc i | None -> acc)
      0 (segment_files dir)

let create ?(io = Diskchaos.real) ?(fresh = false) ?segment_bytes dir =
  mkdir_p io dir;
  if fresh then begin
    List.iter (fun n -> io.remove (Filename.concat dir n)) (segment_files dir);
    List.iter (fun n -> io.remove (Filename.concat dir n)) (tmp_files dir);
    io.remove (Filename.concat dir manifest_name)
  end;
  let prior = if fresh then None else load_manifest dir in
  let sb =
    match (segment_bytes, prior) with
    | Some sb, _ -> sb
    | None, Some m -> m.segment_bytes
    | None, None -> default_segment_bytes
  in
  let man =
    match prior with
    | Some m -> { m with segment_bytes = sb }
    | None ->
      (* No readable manifest: adopt whatever segments are on disk as
         open, so a store whose manifest was destroyed is still
         resumable with zero data loss. *)
      let adopted = if fresh then [] else segment_files dir in
      { segment_bytes = sb; sealed = []; open_segments = adopted }
  in
  (* Seal what a previous writer left open, in its open order, before
     any new segment exists: fresh appends go to segments numbered (and
     sealed) after it, so the logical order — sealed then open — keeps
     the durable prefix ahead of resumed entries. *)
  let man =
    {
      man with
      sealed = man.sealed @ List.map (seal_of_file dir) man.open_segments;
      open_segments = [];
    }
  in
  write_manifest io dir man;
  {
    dir;
    io;
    slock = Mutex.create ();
    writers = Hashtbl.create 8;
    man;
    next_seg = next_index dir;
  }

(* Caller holds [slock].  The manifest lists the new segment before its
   file exists: a crash between the two leaves a listed-but-missing
   segment, which reads as empty. *)
let open_segment t =
  let name = seg_name t.next_seg in
  t.next_seg <- t.next_seg + 1;
  t.man <- { t.man with open_segments = t.man.open_segments @ [ name ] };
  write_manifest t.io t.dir t.man;
  let file = t.io.open_file ~append:true (Filename.concat t.dir name) in
  (name, file)

let writer_for t =
  let key = (Domain.self () :> int) in
  locked t.slock (fun () ->
      match Hashtbl.find_opt t.writers key with
      | Some w -> w
      | None ->
        let seg, file = open_segment t in
        let w = { wlock = Mutex.create (); file; seg; written = 0 } in
        Hashtbl.add t.writers key w;
        w)

(* Caller holds [w.wlock].  Seal the full segment and open the next
   one; a single manifest write covers both transitions. *)
let rotate t w =
  w.file.flush ();
  w.file.close ();
  let sealed = seal_of_file t.dir w.seg in
  locked t.slock (fun () ->
      t.man <-
        {
          t.man with
          sealed = t.man.sealed @ [ sealed ];
          open_segments =
            List.filter (fun n -> n <> w.seg) t.man.open_segments;
        };
      let seg, file = open_segment t in
      w.seg <- seg;
      w.file <- file;
      w.written <- 0)

let append_line t line =
  let w = writer_for t in
  locked w.wlock (fun () ->
      let data = line ^ "\n" in
      w.file.write data;
      w.file.flush ();
      w.written <- w.written + String.length data;
      if w.written >= t.man.segment_bytes then rotate t w)

let close t =
  let ws =
    locked t.slock (fun () ->
        let ws = Hashtbl.fold (fun _ w acc -> w :: acc) t.writers [] in
        Hashtbl.reset t.writers;
        ws)
  in
  let sealed_now =
    List.map
      (fun w ->
        locked w.wlock (fun () ->
            w.file.close ();
            w.seg))
      ws
  in
  locked t.slock (fun () ->
      let sealing, still_open =
        List.partition (fun n -> List.mem n sealed_now) t.man.open_segments
      in
      if sealing <> [] then begin
        t.man <-
          {
            t.man with
            sealed = t.man.sealed @ List.map (seal_of_file t.dir) sealing;
            open_segments = still_open;
          };
        write_manifest t.io t.dir t.man
      end)

let checkpoint ?(io = Diskchaos.real) ?segment_bytes dir lines =
  mkdir_p io dir;
  let sb =
    match (segment_bytes, load_manifest dir) with
    | Some sb, _ -> sb
    | None, Some m -> m.segment_bytes
    | None, None -> default_segment_bytes
  in
  let name = seg_name (next_index dir) in
  let path = Filename.concat dir name in
  let tmp = path ^ ".tmp" in
  let f = io.open_file ~append:false tmp in
  Fun.protect
    ~finally:(fun () -> f.close ())
    (fun () ->
      List.iter (fun line -> f.write (line ^ "\n")) lines;
      f.flush ());
  io.rename tmp path;
  (* The atomic cutover: before this rename the fresh segment is an
     ignored orphan, after it the old segments are. *)
  write_manifest io dir
    { segment_bytes = sb; sealed = [ seal_of_file dir name ]; open_segments = [] };
  List.iter
    (fun n -> if n <> name then io.remove (Filename.concat dir n))
    (segment_files dir);
  List.iter (fun n -> io.remove (Filename.concat dir n)) (tmp_files dir)

(* ---- repair primitives ---- *)

let truncate_segment ?(io = Diskchaos.real) ~dir name n =
  let path = Filename.concat dir name in
  let data = read_file path in
  let keep = String.sub data 0 (min n (String.length data)) in
  let tmp = path ^ ".tmp" in
  let f = io.open_file ~append:false tmp in
  Fun.protect
    ~finally:(fun () -> f.close ())
    (fun () ->
      f.write keep;
      f.flush ());
  io.rename tmp path

let remove_segment ?(io = Diskchaos.real) ~dir name =
  io.remove (Filename.concat dir name)

let reseal ?(io = Diskchaos.real) ?segment_bytes dir =
  let sb =
    match (segment_bytes, load_manifest dir) with
    | Some sb, _ -> sb
    | None, Some m -> m.segment_bytes
    | None, None -> default_segment_bytes
  in
  let keep, orphans =
    List.partition (fun (_, standing) -> standing <> Orphan) (segments dir)
  in
  List.iter (fun (n, _) -> io.remove (Filename.concat dir n)) orphans;
  List.iter (fun n -> io.remove (Filename.concat dir n)) (tmp_files dir);
  let sealed =
    List.filter_map
      (fun (n, _) ->
        if Sys.file_exists (Filename.concat dir n) then
          Some (seal_of_file dir n)
        else None)
      keep
  in
  write_manifest io dir { segment_bytes = sb; sealed; open_segments = [] }
