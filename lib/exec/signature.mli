(** Outcome signatures: dedup/cluster a large profile into failure modes.

    A 10k-injection campaign rarely exhibits 10k distinct behaviours —
    most entries are the same parser error with a different directive
    name or line number baked into the message.  A signature abstracts
    an entry to [(fault class, outcome label, normalized message)]; the
    normalizer masks the volatile fragments (numbers, quoted tokens,
    whitespace), so entries that differ only in those collapse into one
    cluster.  This is the flat, order-independent analogue of Ocasta's
    behaviour clustering (arXiv:1711.04030). *)

type key = {
  class_name : string;  (** scenario class, e.g. ["typo/value"] *)
  label : string;       (** outcome label: startup/functional/ignored/n/a *)
  message : string;     (** normalized outcome message *)
}

type cluster = {
  key : key;
  count : int;
  scenario_ids : string list;  (** members, sorted *)
  example : string;            (** description of the smallest-id member *)
}

val normalize : string -> string
(** Lowercase; mask volatile literals as [#] — digit runs (with an
    optional decimal fraction and size/duration unit suffix, so ["16M"],
    ["512kB"] and ["30s"] all mask identically), [0x]-prefixed hex
    literals, and bare hexadecimal runs of four or more characters that
    contain at least one decimal digit (["7f3a"] masks, ["dead"]
    survives); mask single- or double-quoted spans as [<q>]; collapse
    whitespace runs — ["unknown key \"Prot\" on line 42"] and
    ["unknown key \"prot2\" on line 7"] normalize identically. *)

val outcome_message : Conferr.Outcome.t -> string
(** The message text an outcome carries: the startup/not-applicable
    message, joined functional-failure messages, the crash summary
    (cause + phase, no backtrace), [""] for [Passed].  This is what
    {!of_entry} normalizes — and what the inference layer ([lib/infer])
    mines templates from. *)

val of_entry : Conferr.Profile.entry -> key

val clusters : Conferr.Profile.entry list -> cluster list
(** Group entries by signature.  The result is a pure function of the
    entry {e set}: reordering the input changes nothing (clusters are
    sorted by descending size then key; members and examples are chosen
    by smallest scenario id). *)

val render : cluster list -> string
(** Table: count, class, outcome, normalized message, example. *)
