(** Minimal JSON encoder/decoder for the result journal.

    The journal needs exactly the JSON subset below (objects of strings,
    numbers, and string arrays, one object per line); depending on an
    external JSON package for that would be the only third-party data
    dependency in the tree, so the codec is written out here.  Strings
    are treated as raw bytes: any byte outside printable ASCII is
    emitted as a [\u00XX] escape, so journal lines are always 7-bit
    clean and newline-free. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One-line rendering (no newlines, no insignificant whitespace). *)

val of_string : string -> (t, string) result
(** Parse one value; trailing garbage is an error.  Only the constructs
    [to_string] emits are guaranteed to round-trip. *)

(** {1 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val str_list : t -> string list option
