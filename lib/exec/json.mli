(** Alias of {!Conferr_obsv.Json}, the minimal JSON codec.

    The implementation moved to [lib/obsv] when the observability layer
    was added (its trace exporter needs the codec and sits below the
    executor); this module keeps the historical [Conferr_exec.Json]
    path — including the type equality, so values flow freely between
    the two names. *)

include module type of struct
  include Conferr_obsv.Json
end
