(* The codec moved to lib/obsv (the trace exporter needs it below the
   executor in the dependency order); this alias keeps the historical
   [Conferr_exec.Json] name working for the journal and its tests. *)
include Conferr_obsv.Json
