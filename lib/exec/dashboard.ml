let row_of_entry (e : Journal.entry) =
  let profile_entry =
    {
      Conferr.Profile.scenario_id = e.Journal.scenario_id;
      class_name = e.Journal.class_name;
      description = e.Journal.description;
      outcome = e.Journal.outcome;
    }
  in
  let key = Signature.of_entry profile_entry in
  let detail =
    match e.Journal.outcome with
    | Conferr.Outcome.Startup_failure msg -> msg
    | Conferr.Outcome.Test_failure msgs -> String.concat "; " msgs
    | Conferr.Outcome.Passed -> ""
    | Conferr.Outcome.Not_applicable msg -> msg
    | Conferr.Outcome.Crashed c -> Conferr.Outcome.crash_summary c
  in
  {
    Conferr_obsv.Report.id = e.Journal.scenario_id;
    class_name = e.Journal.class_name;
    outcome = Conferr.Outcome.label e.Journal.outcome;
    detail;
    signature =
      Printf.sprintf "%s | %s | %s" key.Signature.class_name key.Signature.label
        key.Signature.message;
    elapsed_ms = e.Journal.elapsed_ms;
    attempts = e.Journal.attempts;
    flaky = e.Journal.votes <> [];
    phase_ms = e.Journal.phase_ms;
  }

let rows_of_entries entries = List.map row_of_entry entries
