(** Structured progress for a running campaign.

    Workers report events as scenarios start and finish; the tracker
    folds them into counters (thread-safe, shared across domains) that
    can be snapshotted at any time for a live display and are rendered
    as the final "execution" section of a report.  Events are also
    surfaced through {!Logs} (source ["conferr.exec"]) so [-v] shows the
    campaign advancing. *)

type event =
  | Started of { index : int; id : string }
  | Finished of { index : int; id : string; label : string; elapsed_ms : float }
  | Timed_out of { index : int; id : string; attempt : int }
      (** the scenario exceeded its deadline on [attempt] (1-based);
          it is retried while attempts remain, then classified *)
  | Resumed of { count : int }
      (** [count] scenarios were restored from the journal, not re-run *)
  | Flaky of { index : int; id : string; attempts : int }
      (** the quorum's [attempts] re-runs disagreed on the outcome *)
  | Breaker_skipped of { index : int; id : string; bucket : string }
      (** classified without execution: the bucket's breaker was open *)
  | Breaker_tripped of { bucket : string }
      (** a (SUT × fault class) bucket crossed its crash threshold *)

type t

val create : ?metrics:Conferr_obsv.Metrics.t -> total:int -> unit -> t
(** [total] is the campaign size, including journaled scenarios.  The
    counters live in a {!Conferr_obsv.Metrics} registry — pass
    [?metrics] to share the campaign's registry so a [--metrics]
    snapshot exports exactly the numbers this tracker prints; omitted,
    a private registry is used and behaviour is unchanged.  Counter
    names are the [conferr_scenarios_*] / [conferr_breaker_*] families
    listed in [doc/obsv.md]. *)

val note : t -> event -> unit

type snapshot = {
  total : int;
  resumed : int;
  started : int;
  finished : int;        (** completed this run (excludes resumed) *)
  timeouts : int;        (** timeout events, including retried attempts *)
  retries : int;         (** re-runs after a timeout *)
  flaky : int;           (** scenarios whose quorum disagreed *)
  breaker_skipped : int; (** scenarios classified without execution *)
  by_label : (string * int) list;  (** finished outcomes per label, sorted *)
  breaker_trips : (string * int) list;  (** trips per bucket, sorted *)
  crashed : int;         (** finished scenarios with the "crashed" label *)
  elapsed_s : float;     (** wall time since [create] *)
  rate : float;          (** finished scenarios per second, 0 when idle *)
}

val snapshot : t -> snapshot

val render : snapshot -> string
(** Human-readable summary block, e.g. for the end of a CLI run.  The
    hardening lines (flaky, breaker) only appear when nonzero, so a
    clean campaign's block is unchanged from earlier versions. *)

val event_to_json : event -> Conferr_obsv.Json.t
(** One newline-free JSON object per event (an ["event"] tag plus the
    constructor's fields) — the wire format of the daemon's per-campaign
    progress stream (doc/serve.md). *)

val log_event : event -> unit
(** Default event sink: one [Logs] line per event (debug for
    start/finish, info for resume, warning for timeouts, flaky runs and
    breaker activity). *)
