(** Segmented journal store — the v3 on-disk layout (doc/exec.md).

    A v3 journal is a {e directory}: length-bounded segment files
    ([seg-000001.jsonl], …) plus a compact manifest ([MANIFEST.json])
    updated atomically by write-to-temp + rename.  Each OCaml 5 domain
    appends to its own open segment, so concurrent writers never share
    a lock on the data path — the global append lock of the
    single-file journal is gone.  A segment that reaches the size
    bound is {e sealed}: its byte length, line count and CRC-32 are
    recorded in the manifest, turning later bit rot into a detectable
    manifest/disk mismatch.

    This module owns the {e layout} only — segments, manifest,
    rotation, atomic checkpoint — and treats lines as opaque strings.
    The entry codec, fsck policy and repair policy stay in {!Journal},
    which dispatches here when a journal path is a directory.

    Crash-consistency invariants (what fsck/repair lean on):
    - the manifest is replaced only by [rename], so readers see either
      the old or the new one, never a torn one;
    - a segment is listed in the manifest {e before} its file is
      created, so a crash between the two leaves a listed-but-missing
      segment, which reads as empty;
    - a segment file not listed in the manifest is an {e orphan} (the
      residue of an interrupted {!checkpoint}) and is ignored by
      {!read_lines} — its content is always covered by the listed
      segments on one side of the checkpoint's atomic cutover. *)

val manifest_name : string
(** ["MANIFEST.json"]. *)

val default_segment_bytes : int
(** 1 MiB — the rotation bound when none is configured. *)

type sealed = { name : string; lines : int; bytes : int; crc : int32 }
(** A sealed segment's manifest record; [crc] is the CRC-32 of the
    whole file, [lines] its newline count. *)

type manifest = {
  segment_bytes : int;
  sealed : sealed list;       (** in append order *)
  open_segments : string list; (** segments still being written, in open order *)
}

val is_store : string -> bool
(** The path is a directory that looks like a v3 store: it has a
    manifest or at least one [seg-*.jsonl] file.  A plain directory is
    {e not} a store — callers must opt in before one is created. *)

val load_manifest : string -> manifest option
(** [None] when the manifest is missing or unparseable (fsck reports
    that; {!read_lines} falls back to scanning). *)

val segment_files : string -> string list
(** Every [seg-*.jsonl] file name in the directory, sorted. *)

(** A segment file's standing relative to the manifest. *)
type standing = Sealed_as of sealed | Open | Orphan

val segments : string -> (string * standing) list
(** Every segment file on disk, in logical order: manifest sealed
    order, then open order, then orphans (sorted).  A listed segment
    whose file is missing is included (it reads as empty).  With no
    readable manifest every file is [Open] — adopted, since nothing
    can be distinguished. *)

val read_lines : string -> string list
(** Every line of every non-orphan segment, in logical order. *)

val read_text : string -> string
(** The concatenated raw bytes of every non-orphan segment — the
    store's single-file rendering (the daemon's journal route). *)

(** {1 Writing} *)

type t

val create :
  ?io:Conferr_harden.Diskchaos.io ->
  ?fresh:bool ->
  ?segment_bytes:int ->
  string ->
  t
(** Open (creating the directory if needed) for appending.
    [~fresh:true] deletes every segment and the manifest first.  When
    resuming, existing sealed/open segments are left untouched —
    appends go to {e new} segments, and the executor's final
    checkpoint compacts everything.  [segment_bytes] defaults to the
    manifest's recorded bound, then {!default_segment_bytes}.  All
    writes go through [io] (default {!Conferr_harden.Diskchaos.real}). *)

val append_line : t -> string -> unit
(** Append one line (adding the newline) to the calling domain's open
    segment, flushing it to the OS, and rotate the segment if it
    reached the bound.  Safe to call from any domain concurrently. *)

val close : t -> unit
(** Seal every open segment and record it in the manifest.  May raise
    (the manifest update goes through the store's [io]). *)

val checkpoint :
  ?io:Conferr_harden.Diskchaos.io -> ?segment_bytes:int -> string -> string list -> unit
(** Atomically replace the store's logical content with exactly
    [lines]: write them to one fresh segment (temp + rename), cut the
    manifest over to it alone, then delete the old segments.  A crash
    before the manifest cutover leaves the new segment as an ignored
    orphan; after it, the stale old segments are the orphans —
    readers see the old or the new content, never a mixture. *)

(** {1 Repair primitives (policy lives in {!Journal})} *)

val truncate_segment :
  ?io:Conferr_harden.Diskchaos.io -> dir:string -> string -> int -> unit
(** Truncate segment [name] to its first [n] bytes, atomically. *)

val remove_segment : ?io:Conferr_harden.Diskchaos.io -> dir:string -> string -> unit

val reseal : ?io:Conferr_harden.Diskchaos.io -> ?segment_bytes:int -> string -> unit
(** Rebuild the manifest from the segment files on disk: every
    non-orphan segment (every segment, when no manifest is readable)
    is sealed with a freshly computed CRC/line count, in logical
    order; orphan files are deleted.  Leftover [*.tmp] files are
    removed too.  The repair endgame after damaged segments have been
    truncated. *)
