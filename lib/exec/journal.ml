module Outcome = Conferr.Outcome
module Diskchaos = Conferr_harden.Diskchaos

let format_version = 2
let store_version = 3

exception Fault of string

(* Storage-level failures surface as [Fault] so callers (executor,
   daemon, CLI) can tell "the journal's disk is failing" apart from a
   scenario failure.  [Diskchaos.Killed] is the injected crash point. *)
let fault_of_exn path = function
  | Sys_error msg -> Fault msg
  | Diskchaos.Killed off ->
    Fault
      (Printf.sprintf "%s: journal writer killed at byte offset %d (injected)"
         path off)
  | exn -> exn

let faultable path f = try f () with exn -> raise (fault_of_exn path exn)

type entry = {
  scenario_id : string;
  class_name : string;
  description : string;
  seed : int64;
  outcome : Outcome.t;
  elapsed_ms : float;
  attempts : int;
  votes : Outcome.t list;
  phase_ms : (string * float) list;
}

(* The outcome is stored as its profile label plus the detail messages;
   together they reconstruct the constructor exactly.  For [Crashed] the
   detail carries cause, phase, then the backtrace. *)
let outcome_detail = function
  | Outcome.Startup_failure msg -> [ msg ]
  | Outcome.Test_failure msgs -> msgs
  | Outcome.Passed -> []
  | Outcome.Not_applicable msg -> [ msg ]
  | Outcome.Crashed c ->
    [ Outcome.cause_to_string c.cause; Outcome.phase_label c.phase; c.backtrace ]

let outcome_of_parts label detail =
  match label with
  | "startup" ->
    Ok (Outcome.Startup_failure (match detail with m :: _ -> m | [] -> ""))
  | "functional" -> Ok (Outcome.Test_failure detail)
  | "ignored" -> Ok Outcome.Passed
  | "n/a" ->
    Ok (Outcome.Not_applicable (match detail with m :: _ -> m | [] -> ""))
  | "crashed" -> (
    match detail with
    | cause_s :: phase_s :: rest -> (
      match (Outcome.cause_of_string cause_s, Outcome.phase_of_label phase_s) with
      | Some cause, Some phase ->
        Ok
          (Outcome.Crashed
             { cause; phase; backtrace = String.concat "\n" rest })
      | None, _ -> Error (Printf.sprintf "unknown crash cause %S" cause_s)
      | _, None -> Error (Printf.sprintf "unknown crash phase %S" phase_s))
    | _ -> Error "crashed outcome needs cause and phase detail")
  | other -> Error (Printf.sprintf "unknown outcome label %S" other)

let outcome_to_json o =
  Json.Obj
    [
      ("outcome", Json.Str (Outcome.label o));
      ("detail", Json.Arr (List.map (fun m -> Json.Str m) (outcome_detail o)));
    ]

let entry_to_json e =
  let base =
    [
      ("id", Json.Str e.scenario_id);
      ("class", Json.Str e.class_name);
      ("seed", Json.Str (Int64.to_string e.seed));
      ("outcome", Json.Str (Outcome.label e.outcome));
      ("detail", Json.Arr (List.map (fun m -> Json.Str m) (outcome_detail e.outcome)));
      ("ms", Json.Num e.elapsed_ms);
      ("attempts", Json.Num (float_of_int e.attempts));
      ("desc", Json.Str e.description);
    ]
  in
  let votes =
    if e.votes = [] then []
    else [ ("votes", Json.Arr (List.map outcome_to_json e.votes)) ]
  in
  (* "phase" arrived with v2.1 (observability); omitted when empty so
     journals written with tracing off are byte-identical to v2. *)
  let phase =
    if e.phase_ms = [] then []
    else
      [ ("phase", Json.Obj (List.map (fun (p, ms) -> (p, Json.Num ms)) e.phase_ms)) ]
  in
  Json.Obj (base @ votes @ phase)

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let outcome_of_json j =
  let* label = field "outcome" Json.str j in
  let* detail = field "detail" Json.str_list j in
  outcome_of_parts label detail

let entry_of_json j =
  let* scenario_id = field "id" Json.str j in
  let* class_name = field "class" Json.str j in
  let* description = field "desc" Json.str j in
  let* seed_text = field "seed" Json.str j in
  let* seed =
    match Int64.of_string_opt seed_text with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "bad seed %S" seed_text)
  in
  let* outcome = outcome_of_json j in
  let* elapsed_ms = field "ms" Json.num j in
  (* [attempts] and [votes] arrived with format v2; a v1 entry is one
     clean attempt. *)
  let* attempts =
    match Json.member "attempts" j with
    | None -> Ok 1
    | Some a -> (
      match Json.num a with
      | Some n when n >= 0.0 -> Ok (int_of_float n)
      | _ -> Error "ill-typed field \"attempts\"")
  in
  let* votes =
    match Json.member "votes" j with
    | None -> Ok []
    | Some (Json.Arr vs) ->
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          let* o = outcome_of_json v in
          Ok (o :: acc))
        (Ok []) vs
      |> Result.map List.rev
    | Some _ -> Error "ill-typed field \"votes\""
  in
  let* phase_ms =
    match Json.member "phase" j with
    | None -> Ok []
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (p, v) ->
          let* acc = acc in
          match Json.num v with
          | Some ms when ms >= 0.0 -> Ok ((p, ms) :: acc)
          | _ -> Error "ill-typed field \"phase\"")
        (Ok []) fields
      |> Result.map List.rev
    | Some _ -> Error "ill-typed field \"phase\""
  in
  Ok
    { scenario_id; class_name; description; seed; outcome; elapsed_ms;
      attempts; votes; phase_ms }

(* v2 line: {"v":2,"crc":"<8 hex>","entry":{...}}.  The CRC covers the
   canonical serialization of the entry member; the codec round-trips
   its own output byte-for-byte, so verification re-serializes the
   parsed member.  A v1 line is the bare entry object.  The v3 store
   (a directory of segments, see {!Segstore}) keeps this exact line
   format — v3 is a layout change, not a wire change. *)
let line_to_json e =
  let body = entry_to_json e in
  let crc = Crc32.string (Json.to_string body) in
  Json.Obj
    [
      ("v", Json.Num (float_of_int format_version));
      ("crc", Json.Str (Crc32.to_hex crc));
      ("entry", body);
    ]

let entry_of_line j =
  match Json.member "v" j with
  | None -> entry_of_json j
  | Some v -> (
    match Json.num v with
    | Some f when f = float_of_int format_version ->
      let* crc_hex = field "crc" Json.str j in
      let* crc =
        match Crc32.of_hex crc_hex with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "bad crc %S" crc_hex)
      in
      let* body =
        match Json.member "entry" j with
        | Some b -> Ok b
        | None -> Error "missing field \"entry\""
      in
      let actual = Crc32.string (Json.to_string body) in
      if actual <> crc then
        Error
          (Printf.sprintf "crc mismatch: line says %s, entry hashes to %s"
             crc_hex (Crc32.to_hex actual))
      else entry_of_json body
    | Some f -> Error (Printf.sprintf "unsupported journal line version %g" f)
    | None -> Error "ill-typed field \"v\"")

let entry_of_string line = Result.bind (Json.of_string line) entry_of_line

let is_store = Segstore.is_store

(* Read-side dispatch is more lenient than {!is_store}: a directory
   that is not (yet) a recognizable store — e.g. a store whose creation
   was killed before its first manifest write became durable — must
   still be read (as empty) and surveyed/repaired as a store, never fed
   to the single-file reader. *)
let reads_as_store path =
  is_store path || (Sys.file_exists path && Sys.is_directory path)

let load_lines lines =
  List.filter_map
    (fun line ->
      if String.trim line = "" then None
      else match entry_of_string line with Ok e -> Some e | Error _ -> None)
    lines

let load path =
  if reads_as_store path then load_lines (Segstore.read_lines path)
  else
    match open_in_bin path with
    | exception Sys_error _ -> []
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec lines acc =
            match input_line ic with
            | exception End_of_file -> List.rev acc
            | line ->
              let acc =
                if String.trim line = "" then acc
                else
                  match entry_of_string line with
                  | Ok e -> e :: acc
                  | Error _ -> acc (* torn, corrupt or foreign line: tolerate *)
              in
              lines acc
          in
          lines [])

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error _ -> ""

let read_text path =
  if reads_as_store path then Segstore.read_text path else read_file path

(* ---- writing ---- *)

type writer =
  | Single of { file : Diskchaos.file; lock : Mutex.t; path : string }
  | Store of { store : Segstore.t; path : string }

let writer_path = function Single s -> s.path | Store s -> s.path

let open_append ?(fresh = false) ?segment_bytes ?io path =
  faultable path (fun () ->
      match segment_bytes with
      | Some sb ->
        if Sys.file_exists path && not (Sys.is_directory path) then
          raise
            (Sys_error
               (path
              ^ ": exists as a single-file journal; a segmented \
                 (--segment-bytes) journal is a directory — remove the file \
                 or choose another path"));
        Store { store = Segstore.create ?io ~fresh ~segment_bytes:sb path; path }
      | None ->
        if Segstore.is_store path then
          Store { store = Segstore.create ?io ~fresh path; path }
        else if Sys.file_exists path && Sys.is_directory path then
          raise
            (Sys_error
               (path
              ^ ": is a directory, not a journal file (pass --segment-bytes \
                 to write a segmented v3 store there)"))
        else
          let io = Option.value io ~default:Diskchaos.real in
          Single
            { file = io.open_file ~append:(not fresh) path;
              lock = Mutex.create (); path })

let append w e =
  let line = Json.to_string (line_to_json e) in
  faultable (writer_path w) (fun () ->
      match w with
      | Single s ->
        Mutex.lock s.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock s.lock)
          (fun () ->
            s.file.write (line ^ "\n");
            s.file.flush ())
      | Store s -> Segstore.append_line s.store line)

(* Best-effort: the writer is closed in cleanup paths where a raise
   would mask the original failure; unsynced damage is fsck's job. *)
let close = function
  | Single s -> s.file.close ()
  | Store s -> ( try Segstore.close s.store with _ -> ())

let checkpoint ?io ?segment_bytes path entries =
  let lines = List.map (fun e -> Json.to_string (line_to_json e)) entries in
  faultable path (fun () ->
      if is_store path || segment_bytes <> None then
        Segstore.checkpoint ?io ?segment_bytes path lines
      else begin
        let io = Option.value io ~default:Diskchaos.real in
        let tmp = path ^ ".tmp" in
        let f = io.open_file ~append:false tmp in
        Fun.protect
          ~finally:(fun () -> f.close ())
          (fun () ->
            List.iter (fun line -> f.write (line ^ "\n")) lines;
            f.flush ());
        io.rename tmp path
      end)

(* ---- fsck ---- *)

type fsck_report = {
  valid : int;
  torn : int;
  corrupt : int;
  valid_prefix_bytes : int;
}

let clean r = r.torn = 0 && r.corrupt = 0

(* A blank line is harmless: it extends the valid prefix but counts as
   no entry.  Torn = not even JSON (the truncated-write shape); corrupt
   = parses as JSON but fails CRC or decoding. *)
let classify_line line =
  if String.trim line = "" then `Blank
  else
    match Json.of_string line with
    | Error _ -> `Torn
    | Ok j -> ( match entry_of_line j with Ok _ -> `Valid | Error _ -> `Corrupt)

let fsck_text data =
  let len = String.length data in
  let rec loop pos valid torn corrupt prefix prefix_ok =
    if pos >= len then { valid; torn; corrupt; valid_prefix_bytes = prefix }
    else
      let nl =
        match String.index_from_opt data pos '\n' with
        | Some i -> i
        | None -> len
      in
      let line = String.sub data pos (nl - pos) in
      let line_end = if nl >= len then len else nl + 1 in
      match classify_line line with
      | `Blank ->
        loop line_end valid torn corrupt
          (if prefix_ok then line_end else prefix)
          prefix_ok
      | `Valid ->
        loop line_end (valid + 1) torn corrupt
          (if prefix_ok then line_end else prefix)
          prefix_ok
      | `Torn -> loop line_end valid (torn + 1) corrupt prefix false
      | `Corrupt -> loop line_end valid torn (corrupt + 1) prefix false
  in
  loop 0 0 0 0 0 true

let fsck_file path = fsck_text (read_file path)

let repair_file path =
  let report = fsck_file path in
  if not (clean report) then begin
    let data = read_file path in
    let keep =
      String.sub data 0 (min report.valid_prefix_bytes (String.length data))
    in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc keep;
        flush oc);
    Sys.rename tmp path
  end;
  report

(* ---- store-aware survey (fsck with segment detail) ---- *)

type segment_standing = File | Sealed | Open | Orphan

let standing_label = function
  | File -> "file"
  | Sealed -> "sealed"
  | Open -> "open"
  | Orphan -> "orphan"

type segment_fsck = {
  segment : string;
  standing : segment_standing;
  crc_ok : bool;
  counts : fsck_report;
  dropped : int;
}

type survey = {
  path : string;
  store : bool;
  manifest_ok : bool;
  segments : segment_fsck list;
  repaired : bool;
}

let segment_clean s = clean s.counts && s.crc_ok && s.standing <> Orphan

let survey_clean s =
  s.manifest_ok && List.for_all segment_clean s.segments

let survey_totals s =
  List.fold_left
    (fun acc seg ->
      {
        valid = acc.valid + seg.counts.valid;
        torn = acc.torn + seg.counts.torn;
        corrupt = acc.corrupt + seg.counts.corrupt;
        valid_prefix_bytes =
          acc.valid_prefix_bytes + seg.counts.valid_prefix_bytes;
      })
    { valid = 0; torn = 0; corrupt = 0; valid_prefix_bytes = 0 }
    s.segments

let survey_store ?(repair = false) path =
  let scan () =
    let manifest_ok = Segstore.load_manifest path <> None in
    let segments =
      List.map
        (fun (name, standing) ->
          let data = read_file (Filename.concat path name) in
          let counts = fsck_text data in
          let standing, crc_ok =
            match standing with
            | Segstore.Sealed_as s ->
              ( Sealed,
                s.Segstore.crc = Crc32.string data
                && s.Segstore.bytes = String.length data )
            | Segstore.Open -> (Open, true)
            | Segstore.Orphan -> (Orphan, true)
          in
          { segment = name; standing; crc_ok; counts; dropped = 0 })
        (Segstore.segments path)
    in
    { path; store = true; manifest_ok; segments; repaired = false }
  in
  let before = scan () in
  if repair && not (survey_clean before) then begin
    let segments =
      List.map
        (fun seg ->
          if seg.standing <> Orphan && not (clean seg.counts) then begin
            Segstore.truncate_segment ~dir:path seg.segment
              seg.counts.valid_prefix_bytes;
            { seg with dropped = seg.counts.torn + seg.counts.corrupt }
          end
          else seg)
        before.segments
    in
    (* Reseal rebuilds the manifest from the healed files and deletes
       orphan segments and temp leftovers. *)
    Segstore.reseal path;
    { before with segments; repaired = true }
  end
  else before

let survey ?(repair = false) path =
  if reads_as_store path then survey_store ~repair path
  else begin
    let counts = if repair then repair_file path else fsck_file path in
    let damaged = not (clean counts) in
    {
      path;
      store = false;
      manifest_ok = true;
      segments =
        [
          {
            segment = Filename.basename path;
            standing = File;
            crc_ok = true;
            counts;
            dropped = (if repair && damaged then counts.torn + counts.corrupt else 0);
          };
        ];
      repaired = repair && damaged;
    }
  end

let survey_to_json s =
  let totals = survey_totals s in
  Json.Obj
    [
      ("path", Json.Str s.path);
      ("store", Json.Bool s.store);
      ("manifest_ok", Json.Bool s.manifest_ok);
      ("clean", Json.Bool (survey_clean s || s.repaired));
      ("repaired", Json.Bool s.repaired);
      ("valid", Json.Num (float_of_int totals.valid));
      ("torn", Json.Num (float_of_int totals.torn));
      ("corrupt", Json.Num (float_of_int totals.corrupt));
      ( "segments",
        Json.Arr
          (List.map
             (fun seg ->
               Json.Obj
                 [
                   ("segment", Json.Str seg.segment);
                   ("standing", Json.Str (standing_label seg.standing));
                   ("valid", Json.Num (float_of_int seg.counts.valid));
                   ("torn", Json.Num (float_of_int seg.counts.torn));
                   ("corrupt", Json.Num (float_of_int seg.counts.corrupt));
                   ( "valid_prefix_bytes",
                     Json.Num (float_of_int seg.counts.valid_prefix_bytes) );
                   ("crc_ok", Json.Bool seg.crc_ok);
                   ("repaired", Json.Num (float_of_int seg.dropped));
                 ])
             s.segments) );
    ]

(* Single-file compatibility surface: [fsck]/[repair] keep their
   historical signatures and, on a v3 store, aggregate across
   segments. *)
let fsck path =
  if reads_as_store path then survey_totals (survey path) else fsck_file path

let repair path =
  if reads_as_store path then survey_totals (survey ~repair:true path)
  else repair_file path

(* ---- CLI-facing path validation (exit-2 material) ---- *)

let validate_path ?segment_bytes path =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let writable p =
    match Unix.access p [ Unix.W_OK ] with
    | () -> true
    | exception Unix.Unix_error _ -> false
  in
  let parent = Filename.dirname path in
  if not (Sys.file_exists parent) then
    err "%s: parent directory %s does not exist" path parent
  else if not (Sys.is_directory parent) then
    err "%s: %s is not a directory" path parent
  else if not (writable parent) then
    err "%s: parent directory %s is not writable" path parent
  else if not (Sys.file_exists path) then Ok ()
  else if Sys.is_directory path then
    if Segstore.is_store path || segment_bytes <> None then
      if writable path then Ok ()
      else err "%s: journal directory is not writable" path
    else
      err
        "%s: is a directory, not a journal file (pass --segment-bytes N to \
         write a segmented v3 store there, or point the journal at a file \
         path)"
        path
  else if segment_bytes <> None then
    err
      "%s: exists as a single-file journal; a segmented (--segment-bytes) \
       journal is a directory — remove the file or choose another path"
      path
  else if not (writable path) then err "%s: journal is not writable" path
  else Ok ()
