module Outcome = Conferr.Outcome

type entry = {
  scenario_id : string;
  class_name : string;
  description : string;
  seed : int64;
  outcome : Outcome.t;
  elapsed_ms : float;
}

(* The outcome is stored as its profile label plus the detail messages;
   together they reconstruct the constructor exactly. *)
let outcome_detail = function
  | Outcome.Startup_failure msg -> [ msg ]
  | Outcome.Test_failure msgs -> msgs
  | Outcome.Passed -> []
  | Outcome.Not_applicable msg -> [ msg ]

let outcome_of_parts label detail =
  match label with
  | "startup" ->
    Ok (Outcome.Startup_failure (match detail with m :: _ -> m | [] -> ""))
  | "functional" -> Ok (Outcome.Test_failure detail)
  | "ignored" -> Ok Outcome.Passed
  | "n/a" ->
    Ok (Outcome.Not_applicable (match detail with m :: _ -> m | [] -> ""))
  | other -> Error (Printf.sprintf "unknown outcome label %S" other)

let entry_to_json e =
  Json.Obj
    [
      ("id", Json.Str e.scenario_id);
      ("class", Json.Str e.class_name);
      ("seed", Json.Str (Int64.to_string e.seed));
      ("outcome", Json.Str (Outcome.label e.outcome));
      ("detail", Json.Arr (List.map (fun m -> Json.Str m) (outcome_detail e.outcome)));
      ("ms", Json.Num e.elapsed_ms);
      ("desc", Json.Str e.description);
    ]

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let entry_of_json j =
  let* scenario_id = field "id" Json.str j in
  let* class_name = field "class" Json.str j in
  let* description = field "desc" Json.str j in
  let* seed_text = field "seed" Json.str j in
  let* seed =
    match Int64.of_string_opt seed_text with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "bad seed %S" seed_text)
  in
  let* label = field "outcome" Json.str j in
  let* detail = field "detail" Json.str_list j in
  let* outcome = outcome_of_parts label detail in
  let* elapsed_ms = field "ms" Json.num j in
  Ok { scenario_id; class_name; description; seed; outcome; elapsed_ms }

let load path =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec lines acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line ->
            let acc =
              if String.trim line = "" then acc
              else
                match Result.bind (Json.of_string line) entry_of_json with
                | Ok e -> e :: acc
                | Error _ -> acc (* torn or foreign line: tolerate *)
            in
            lines acc
        in
        lines [])

type writer = { oc : out_channel; lock : Mutex.t }

let open_append ?(fresh = false) path =
  let flags =
    if fresh then [ Open_wronly; Open_creat; Open_trunc ]
    else [ Open_wronly; Open_creat; Open_append ]
  in
  { oc = open_out_gen flags 0o644 path; lock = Mutex.create () }

let append w e =
  let line = Json.to_string (entry_to_json e) in
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      output_string w.oc line;
      output_char w.oc '\n';
      flush w.oc)

let close w = close_out_noerr w.oc

let checkpoint path entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (Json.to_string (entry_to_json e));
          output_char oc '\n')
        entries;
      flush oc);
  Sys.rename tmp path
