module Outcome = Conferr.Outcome

let format_version = 2

type entry = {
  scenario_id : string;
  class_name : string;
  description : string;
  seed : int64;
  outcome : Outcome.t;
  elapsed_ms : float;
  attempts : int;
  votes : Outcome.t list;
  phase_ms : (string * float) list;
}

(* The outcome is stored as its profile label plus the detail messages;
   together they reconstruct the constructor exactly.  For [Crashed] the
   detail carries cause, phase, then the backtrace. *)
let outcome_detail = function
  | Outcome.Startup_failure msg -> [ msg ]
  | Outcome.Test_failure msgs -> msgs
  | Outcome.Passed -> []
  | Outcome.Not_applicable msg -> [ msg ]
  | Outcome.Crashed c ->
    [ Outcome.cause_to_string c.cause; Outcome.phase_label c.phase; c.backtrace ]

let outcome_of_parts label detail =
  match label with
  | "startup" ->
    Ok (Outcome.Startup_failure (match detail with m :: _ -> m | [] -> ""))
  | "functional" -> Ok (Outcome.Test_failure detail)
  | "ignored" -> Ok Outcome.Passed
  | "n/a" ->
    Ok (Outcome.Not_applicable (match detail with m :: _ -> m | [] -> ""))
  | "crashed" -> (
    match detail with
    | cause_s :: phase_s :: rest -> (
      match (Outcome.cause_of_string cause_s, Outcome.phase_of_label phase_s) with
      | Some cause, Some phase ->
        Ok
          (Outcome.Crashed
             { cause; phase; backtrace = String.concat "\n" rest })
      | None, _ -> Error (Printf.sprintf "unknown crash cause %S" cause_s)
      | _, None -> Error (Printf.sprintf "unknown crash phase %S" phase_s))
    | _ -> Error "crashed outcome needs cause and phase detail")
  | other -> Error (Printf.sprintf "unknown outcome label %S" other)

let outcome_to_json o =
  Json.Obj
    [
      ("outcome", Json.Str (Outcome.label o));
      ("detail", Json.Arr (List.map (fun m -> Json.Str m) (outcome_detail o)));
    ]

let entry_to_json e =
  let base =
    [
      ("id", Json.Str e.scenario_id);
      ("class", Json.Str e.class_name);
      ("seed", Json.Str (Int64.to_string e.seed));
      ("outcome", Json.Str (Outcome.label e.outcome));
      ("detail", Json.Arr (List.map (fun m -> Json.Str m) (outcome_detail e.outcome)));
      ("ms", Json.Num e.elapsed_ms);
      ("attempts", Json.Num (float_of_int e.attempts));
      ("desc", Json.Str e.description);
    ]
  in
  let votes =
    if e.votes = [] then []
    else [ ("votes", Json.Arr (List.map outcome_to_json e.votes)) ]
  in
  (* "phase" arrived with v2.1 (observability); omitted when empty so
     journals written with tracing off are byte-identical to v2. *)
  let phase =
    if e.phase_ms = [] then []
    else
      [ ("phase", Json.Obj (List.map (fun (p, ms) -> (p, Json.Num ms)) e.phase_ms)) ]
  in
  Json.Obj (base @ votes @ phase)

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let outcome_of_json j =
  let* label = field "outcome" Json.str j in
  let* detail = field "detail" Json.str_list j in
  outcome_of_parts label detail

let entry_of_json j =
  let* scenario_id = field "id" Json.str j in
  let* class_name = field "class" Json.str j in
  let* description = field "desc" Json.str j in
  let* seed_text = field "seed" Json.str j in
  let* seed =
    match Int64.of_string_opt seed_text with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "bad seed %S" seed_text)
  in
  let* outcome = outcome_of_json j in
  let* elapsed_ms = field "ms" Json.num j in
  (* [attempts] and [votes] arrived with format v2; a v1 entry is one
     clean attempt. *)
  let* attempts =
    match Json.member "attempts" j with
    | None -> Ok 1
    | Some a -> (
      match Json.num a with
      | Some n when n >= 0.0 -> Ok (int_of_float n)
      | _ -> Error "ill-typed field \"attempts\"")
  in
  let* votes =
    match Json.member "votes" j with
    | None -> Ok []
    | Some (Json.Arr vs) ->
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          let* o = outcome_of_json v in
          Ok (o :: acc))
        (Ok []) vs
      |> Result.map List.rev
    | Some _ -> Error "ill-typed field \"votes\""
  in
  let* phase_ms =
    match Json.member "phase" j with
    | None -> Ok []
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (p, v) ->
          let* acc = acc in
          match Json.num v with
          | Some ms when ms >= 0.0 -> Ok ((p, ms) :: acc)
          | _ -> Error "ill-typed field \"phase\"")
        (Ok []) fields
      |> Result.map List.rev
    | Some _ -> Error "ill-typed field \"phase\""
  in
  Ok
    { scenario_id; class_name; description; seed; outcome; elapsed_ms;
      attempts; votes; phase_ms }

(* v2 line: {"v":2,"crc":"<8 hex>","entry":{...}}.  The CRC covers the
   canonical serialization of the entry member; the codec round-trips
   its own output byte-for-byte, so verification re-serializes the
   parsed member.  A v1 line is the bare entry object. *)
let line_to_json e =
  let body = entry_to_json e in
  let crc = Crc32.string (Json.to_string body) in
  Json.Obj
    [
      ("v", Json.Num (float_of_int format_version));
      ("crc", Json.Str (Crc32.to_hex crc));
      ("entry", body);
    ]

let entry_of_line j =
  match Json.member "v" j with
  | None -> entry_of_json j
  | Some v -> (
    match Json.num v with
    | Some f when f = float_of_int format_version ->
      let* crc_hex = field "crc" Json.str j in
      let* crc =
        match Crc32.of_hex crc_hex with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "bad crc %S" crc_hex)
      in
      let* body =
        match Json.member "entry" j with
        | Some b -> Ok b
        | None -> Error "missing field \"entry\""
      in
      let actual = Crc32.string (Json.to_string body) in
      if actual <> crc then
        Error
          (Printf.sprintf "crc mismatch: line says %s, entry hashes to %s"
             crc_hex (Crc32.to_hex actual))
      else entry_of_json body
    | Some f -> Error (Printf.sprintf "unsupported journal line version %g" f)
    | None -> Error "ill-typed field \"v\"")

let entry_of_string line = Result.bind (Json.of_string line) entry_of_line

let load path =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec lines acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line ->
            let acc =
              if String.trim line = "" then acc
              else
                match entry_of_string line with
                | Ok e -> e :: acc
                | Error _ -> acc (* torn, corrupt or foreign line: tolerate *)
            in
            lines acc
        in
        lines [])

type writer = { oc : out_channel; lock : Mutex.t }

let open_append ?(fresh = false) path =
  let flags =
    if fresh then [ Open_wronly; Open_creat; Open_trunc ]
    else [ Open_wronly; Open_creat; Open_append ]
  in
  { oc = open_out_gen flags 0o644 path; lock = Mutex.create () }

let append w e =
  let line = Json.to_string (line_to_json e) in
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      output_string w.oc line;
      output_char w.oc '\n';
      flush w.oc)

let close w = close_out_noerr w.oc

let checkpoint path entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (Json.to_string (line_to_json e));
          output_char oc '\n')
        entries;
      flush oc);
  Sys.rename tmp path

(* ---- fsck ---- *)

type fsck_report = {
  valid : int;
  torn : int;
  corrupt : int;
  valid_prefix_bytes : int;
}

let clean r = r.torn = 0 && r.corrupt = 0

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

(* A blank line is harmless: it extends the valid prefix but counts as
   no entry.  Torn = not even JSON (the truncated-write shape); corrupt
   = parses as JSON but fails CRC or decoding. *)
let classify_line line =
  if String.trim line = "" then `Blank
  else
    match Json.of_string line with
    | Error _ -> `Torn
    | Ok j -> ( match entry_of_line j with Ok _ -> `Valid | Error _ -> `Corrupt)

let fsck path =
  let data = read_file path in
  let len = String.length data in
  let rec loop pos valid torn corrupt prefix prefix_ok =
    if pos >= len then { valid; torn; corrupt; valid_prefix_bytes = prefix }
    else
      let nl =
        match String.index_from_opt data pos '\n' with
        | Some i -> i
        | None -> len
      in
      let line = String.sub data pos (nl - pos) in
      let line_end = if nl >= len then len else nl + 1 in
      match classify_line line with
      | `Blank ->
        loop line_end valid torn corrupt
          (if prefix_ok then line_end else prefix)
          prefix_ok
      | `Valid ->
        loop line_end (valid + 1) torn corrupt
          (if prefix_ok then line_end else prefix)
          prefix_ok
      | `Torn -> loop line_end valid (torn + 1) corrupt prefix false
      | `Corrupt -> loop line_end valid torn (corrupt + 1) prefix false
  in
  loop 0 0 0 0 0 true

let repair path =
  let report = fsck path in
  if not (clean report) then begin
    let data = read_file path in
    let keep =
      String.sub data 0 (min report.valid_prefix_bytes (String.length data))
    in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc keep;
        flush oc);
    Sys.rename tmp path
  end;
  report
