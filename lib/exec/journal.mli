(** Persistent campaign journal: one JSON object per line (JSONL).

    Every finished injection is appended (and flushed) as one line, so a
    campaign killed mid-run loses at most the entry being written; on
    restart the executor loads the journal and skips every scenario that
    already has an entry.  Line format (see [doc/exec.md]):

    {v
    {"id":"typo-0001","class":"typo/name","seed":"8386958","outcome":"startup",
     "detail":["unknown directive"],"ms":0.41,"desc":"omission of ..."}
    v}

    [seed] is the per-scenario RNG seed as a decimal [int64] string
    (JSON numbers cannot carry 64 bits losslessly). *)

type entry = {
  scenario_id : string;
  class_name : string;
  description : string;
  seed : int64;          (** per-scenario seed derived from the campaign seed *)
  outcome : Conferr.Outcome.t;
  elapsed_ms : float;    (** wall-clock time of the injection *)
}

val entry_to_json : entry -> Json.t
val entry_of_json : Json.t -> (entry, string) result

val load : string -> entry list
(** Load every parseable entry, in file order.  A missing file is an
    empty journal; a torn final line (the crash case) or any other
    unparseable line is skipped rather than fatal. *)

type writer
(** Append handle; internally serialized, safe to share across the
    worker domains of one executor run. *)

val open_append : ?fresh:bool -> string -> writer
(** Open (creating if needed) for appending.  [~fresh:true] truncates
    first — used when starting a new campaign over an old journal. *)

val append : writer -> entry -> unit
(** Write one line and flush it to the OS. *)

val close : writer -> unit

val checkpoint : string -> entry list -> unit
(** Atomically replace the journal with exactly [entries]
    (write-then-rename to a [.tmp] sibling): compacts duplicate lines
    from resumed runs and guarantees readers never observe a torn
    file. *)
