(** Persistent campaign journal: one JSON object per line (JSONL).

    Every finished injection is appended (and flushed) as one line, so a
    campaign killed mid-run loses at most the entry being written; on
    restart the executor loads the journal and skips every scenario that
    already has an entry.  Format version {!format_version} wraps each
    entry with a CRC-32 so torn or rotted lines are detected, not
    silently mis-read (see [doc/exec.md]):

    {v
    {"v":2,"crc":"9f2a11c3","entry":{"id":"typo-0001","class":"typo/name",
     "seed":"8386958","outcome":"startup","detail":["unknown directive"],
     "ms":0.41,"attempts":1,"desc":"omission of ..."}}
    v}

    The CRC covers the canonical serialization of the ["entry"] member.
    Version-1 journals (the bare entry object, no wrapper) still load.
    [seed] is the per-scenario RNG seed as a decimal [int64] string
    (JSON numbers cannot carry 64 bits losslessly).

    Format v2.1 (the observability layer, doc/obsv.md) added one
    optional field: ["phase":{"generate":0.02,…}] records per-phase
    wall milliseconds when the campaign ran with [--trace] or
    [--metrics].  The field is omitted when empty, so journals written
    with observability off are byte-identical to plain v2; v2 and v1
    files still load, and {!fsck} validates the field's shape when
    present.

    {b Format v3} is a {e layout} change, not a wire change: the
    journal becomes a directory — a {!Segstore} of length-bounded
    segment files plus a manifest with per-segment CRCs — and each
    worker domain appends to its own segment, eliminating the global
    append lock.  Lines inside the segments are exactly the v2 format
    above, so every reader ({!load}, [report], [gaps], [infer]) sees
    one logical journal and v1/v2 single files keep loading unchanged.
    Opt in with [?segment_bytes] ({[--segment-bytes]} at the CLI); a
    path that already is a store is recognized automatically. *)

val format_version : int
(** Line format, currently 2 (v2.1 is the same wire version plus the
    optional ["phase"] field). *)

val store_version : int
(** Store layout version: 3 (the segmented directory layout). *)

exception Fault of string
(** A storage-level failure while writing the journal — [Sys_error] or
    an injected {!Conferr_harden.Diskchaos} fault, re-labelled so
    callers can distinguish "the journal's disk is failing" (fail the
    campaign, keep the service alive) from a scenario failure.  Raised
    by {!open_append}, {!append} and {!checkpoint}. *)

type entry = {
  scenario_id : string;
  class_name : string;
  description : string;
  seed : int64;          (** per-scenario seed derived from the campaign seed *)
  outcome : Conferr.Outcome.t;
  elapsed_ms : float;    (** wall-clock time of the injection *)
  attempts : int;        (** executions behind this entry: 1 + timeout
                             retries + quorum re-runs; 0 for a breaker skip *)
  votes : Conferr.Outcome.t list;
      (** every quorum attempt, in order, when they disagreed (the
          scenario is flaky); [[]] otherwise *)
  phase_ms : (string * float) list;
      (** per-phase wall milliseconds keyed by {!Conferr_obsv.Span}
          label, in pipeline order; [[]] when the campaign ran without
          observability (v2.1) *)
}

val entry_to_json : entry -> Json.t
(** The bare entry object (no CRC wrapper). *)

val entry_of_json : Json.t -> (entry, string) result
(** Decode a bare (v1-style) entry object; [attempts] defaults to 1 and
    [votes] to [[]] when absent. *)

val entry_of_string : string -> (entry, string) result
(** Decode one journal line, v2 (wrapper, CRC verified) or v1 (bare). *)

val is_store : string -> bool
(** The path is a v3 segmented store ({!Segstore.is_store}). *)

val load : string -> entry list
(** Load every verifiable entry, in file order — segment order for a
    v3 store.  A missing file is an empty journal; a torn final line
    (the crash case), a CRC-failing line, or any other unparseable
    line is skipped rather than fatal — run {!fsck} to count what was
    skipped. *)

val read_text : string -> string
(** The journal's raw bytes: the file itself, or for a v3 store the
    concatenation of its segments in logical order (what the daemon's
    journal route serves).  Missing path reads as [""]. *)

type writer
(** Append handle; internally serialized for a single file, lock-free
    across domains for a v3 store (each domain owns a segment). *)

val open_append :
  ?fresh:bool ->
  ?segment_bytes:int ->
  ?io:Conferr_harden.Diskchaos.io ->
  string ->
  writer
(** Open (creating if needed) for appending.  [~fresh:true] truncates
    first — used when starting a new campaign over an old journal.
    [segment_bytes] opts into the v3 store layout (rotating segments
    at that bound); without it a path that already is a store keeps
    the store layout, and a plain existing directory raises {!Fault}
    rather than silently adopting it.  [io] (default
    {!Conferr_harden.Diskchaos.real}) is the storage-chaos seam. *)

val append : writer -> entry -> unit
(** Write one line and flush it to the OS.  Raises {!Fault} when the
    storage layer fails. *)

val close : writer -> unit
(** Best-effort: seals open segments (v3) but never raises — the
    writer is closed in cleanup paths, and unsynced damage is
    {!fsck}'s job to find. *)

val checkpoint :
  ?io:Conferr_harden.Diskchaos.io -> ?segment_bytes:int -> string -> entry list -> unit
(** Atomically replace the journal with exactly [entries]
    (write-then-rename): compacts duplicate lines from resumed runs
    and guarantees readers never observe a torn file.  On a v3 store
    (or with [segment_bytes] set) the result is a single sealed
    segment plus a manifest cut over atomically. *)

val validate_path : ?segment_bytes:int -> string -> (unit, string) result
(** Pre-flight check for CLI commands: would {!open_append} with these
    arguments plausibly succeed?  [Error] carries a usage-style
    message (unwritable parent, directory where a file is expected,
    single file where a store is requested, …) — exit-2 material,
    checked before any campaign work starts. *)

(** {1 Integrity checking} *)

type fsck_report = {
  valid : int;    (** lines that parse and pass CRC/decoding *)
  torn : int;     (** lines that are not even JSON — truncated writes *)
  corrupt : int;  (** JSON lines failing CRC or entry decoding *)
  valid_prefix_bytes : int;
      (** byte length of the leading run of valid (or blank) lines —
          what {!repair} keeps (per segment on a v3 store) *)
}

val clean : fsck_report -> bool
(** No torn and no corrupt lines. *)

val fsck : string -> fsck_report
(** Classify every line.  Blank lines count as no entry but do extend
    the valid prefix; a missing file reports all-zero.  On a v3 store
    the counts aggregate across segments — use {!survey} for the
    per-segment detail. *)

val repair : string -> fsck_report
(** {!fsck}, then — if anything is damaged — heal: a single file is
    truncated to its valid prefix (atomically, write-then-rename); a
    v3 store has each damaged {e segment} truncated individually,
    orphan segments and temp leftovers deleted, and the manifest
    resealed from the healed files.  Returns the {e pre}-repair
    report. *)

(** {1 Store-aware survey — [conferr fsck]'s engine} *)

type segment_standing =
  | File    (** a single-file journal (v1/v2) *)
  | Sealed  (** listed sealed in the manifest, CRC-protected *)
  | Open    (** still listed open — an interrupted writer *)
  | Orphan  (** on disk but not in the manifest (interrupted checkpoint) *)

val standing_label : segment_standing -> string

type segment_fsck = {
  segment : string;            (** segment file name (or the file's basename) *)
  standing : segment_standing;
  crc_ok : bool;               (** manifest CRC and length match the bytes on
                                   disk; [true] when there is nothing to check *)
  counts : fsck_report;        (** pre-repair line counts *)
  dropped : int;               (** lines dropped by repair (0 without [~repair]) *)
}

type survey = {
  path : string;
  store : bool;                (** v3 store vs single file *)
  manifest_ok : bool;          (** manifest present and parseable; [true] for files *)
  segments : segment_fsck list;  (** logical order; one entry for a single file *)
  repaired : bool;             (** [~repair] ran and healed something *)
}

val survey : ?repair:bool -> string -> survey
(** The full fsck: per-segment line classification, manifest/CRC
    verification, orphan detection.  With [~repair:true], heal as
    {!repair} does; [counts] keep the pre-repair numbers and
    [dropped]/[repaired] record what healing did. *)

val survey_clean : survey -> bool
(** Nothing torn, corrupt, CRC-mismatched or orphaned, and the
    manifest is readable — the {e pre}-repair verdict. *)

val survey_totals : survey -> fsck_report
(** Line counts summed across segments. *)

val survey_to_json : survey -> Json.t
(** The [conferr fsck --format json] object: totals, [clean] (true
    when clean before repair {e or} repaired), [repaired], and a
    [segments] array with per-segment valid/torn/corrupt/repaired
    counts, standing and CRC verdict. *)
