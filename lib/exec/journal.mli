(** Persistent campaign journal: one JSON object per line (JSONL).

    Every finished injection is appended (and flushed) as one line, so a
    campaign killed mid-run loses at most the entry being written; on
    restart the executor loads the journal and skips every scenario that
    already has an entry.  Format version {!format_version} wraps each
    entry with a CRC-32 so torn or rotted lines are detected, not
    silently mis-read (see [doc/exec.md]):

    {v
    {"v":2,"crc":"9f2a11c3","entry":{"id":"typo-0001","class":"typo/name",
     "seed":"8386958","outcome":"startup","detail":["unknown directive"],
     "ms":0.41,"attempts":1,"desc":"omission of ..."}}
    v}

    The CRC covers the canonical serialization of the ["entry"] member.
    Version-1 journals (the bare entry object, no wrapper) still load.
    [seed] is the per-scenario RNG seed as a decimal [int64] string
    (JSON numbers cannot carry 64 bits losslessly).

    Format v2.1 (the observability layer, doc/obsv.md) added one
    optional field: ["phase":{"generate":0.02,…}] records per-phase
    wall milliseconds when the campaign ran with [--trace] or
    [--metrics].  The field is omitted when empty, so journals written
    with observability off are byte-identical to plain v2; v2 and v1
    files still load, and {!fsck} validates the field's shape when
    present. *)

val format_version : int
(** Currently 2 (v2.1 is the same wire version plus the optional
    ["phase"] field). *)

type entry = {
  scenario_id : string;
  class_name : string;
  description : string;
  seed : int64;          (** per-scenario seed derived from the campaign seed *)
  outcome : Conferr.Outcome.t;
  elapsed_ms : float;    (** wall-clock time of the injection *)
  attempts : int;        (** executions behind this entry: 1 + timeout
                             retries + quorum re-runs; 0 for a breaker skip *)
  votes : Conferr.Outcome.t list;
      (** every quorum attempt, in order, when they disagreed (the
          scenario is flaky); [[]] otherwise *)
  phase_ms : (string * float) list;
      (** per-phase wall milliseconds keyed by {!Conferr_obsv.Span}
          label, in pipeline order; [[]] when the campaign ran without
          observability (v2.1) *)
}

val entry_to_json : entry -> Json.t
(** The bare entry object (no CRC wrapper). *)

val entry_of_json : Json.t -> (entry, string) result
(** Decode a bare (v1-style) entry object; [attempts] defaults to 1 and
    [votes] to [[]] when absent. *)

val entry_of_string : string -> (entry, string) result
(** Decode one journal line, v2 (wrapper, CRC verified) or v1 (bare). *)

val load : string -> entry list
(** Load every verifiable entry, in file order.  A missing file is an
    empty journal; a torn final line (the crash case), a CRC-failing
    line, or any other unparseable line is skipped rather than fatal —
    run {!fsck} to count what was skipped. *)

type writer
(** Append handle; internally serialized, safe to share across the
    worker domains of one executor run. *)

val open_append : ?fresh:bool -> string -> writer
(** Open (creating if needed) for appending.  [~fresh:true] truncates
    first — used when starting a new campaign over an old journal. *)

val append : writer -> entry -> unit
(** Write one line and flush it to the OS. *)

val close : writer -> unit

val checkpoint : string -> entry list -> unit
(** Atomically replace the journal with exactly [entries]
    (write-then-rename to a [.tmp] sibling): compacts duplicate lines
    from resumed runs and guarantees readers never observe a torn
    file. *)

(** {1 Integrity checking} *)

type fsck_report = {
  valid : int;    (** lines that parse and pass CRC/decoding *)
  torn : int;     (** lines that are not even JSON — truncated writes *)
  corrupt : int;  (** JSON lines failing CRC or entry decoding *)
  valid_prefix_bytes : int;
      (** byte length of the leading run of valid (or blank) lines —
          what {!repair} keeps *)
}

val clean : fsck_report -> bool
(** No torn and no corrupt lines. *)

val fsck : string -> fsck_report
(** Classify every line.  Blank lines count as no entry but do extend
    the valid prefix; a missing file reports all-zero. *)

val repair : string -> fsck_report
(** {!fsck}, then — if anything is torn or corrupt — truncate the file
    to its valid prefix (atomically, write-then-rename).  Returns the
    {e pre}-repair report. *)
