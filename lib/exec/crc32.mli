(** CRC-32 (IEEE 802.3), the checksum guarding v2 journal lines against
    torn writes and bit rot (doc/exec.md). *)

val string : string -> int32
(** Checksum of a whole string. *)

val update : int32 -> string -> int32
(** Extend a previous checksum: [update (string a) b = string (a ^ b)]. *)

val to_hex : int32 -> string
(** 8 lowercase hex digits, zero-padded — the journal encoding. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex digits. *)
