(** Self-contained HTML resilience dashboard (doc/obsv.md).

    Renders one static [report.html] — no external scripts, fonts or
    network fetches — from journal-shaped rows plus an optional metrics
    snapshot ({!Metrics.expose} text).  Sections: headline stat tiles,
    the per-class resilience profile as a table with stacked outcome
    bars, per-phase and end-to-end latency histograms (log-2 buckets),
    the explore signature-frontier timeline, and a hardening panel
    (crash clusters, flaky retries, breaker and chaos counters pulled
    from the metrics text).

    The row type deliberately repeats the journal fields as plain
    strings/floats so this module sits at the bottom of the dependency
    stack; [bin/main.ml] maps [Journal.entry] values into it. *)

type row = {
  id : string;                      (** scenario id *)
  class_name : string;              (** fault class, e.g. ["typo/value"] *)
  outcome : string;                 (** outcome label: startup/functional/ignored/n/a/crashed *)
  detail : string;                  (** outcome message/summary *)
  signature : string;               (** normalized outcome signature (clustering key) *)
  elapsed_ms : float;
  attempts : int;
  flaky : bool;                     (** succeeded only on a retry *)
  phase_ms : (string * float) list; (** per-phase wall time, journal v2.1 *)
}

type gap_row = {
  gap_id : string;       (** scenario id *)
  gap_class : string;    (** fault class *)
  gap_static : string;   (** static lint verdict label: clean/warning/error/syntax *)
  gap_outcome : string;  (** dynamic outcome label *)
  gap_kind : string;     (** taxonomy label, e.g. ["silent-acceptance"] *)
  gap_detail : string;   (** first lint finding message, possibly empty *)
}
(** One replayed journal entry for the validator-gaps panel
    (doc/lint.md).  Plain strings for the same dependency-order reason
    as {!row}; [conferr gaps] maps its scan rows into it. *)

type infer_row = {
  inf_id : string;         (** candidate or hand-written rule id *)
  inf_kind : string;       (** value/required/unknown/implies, or "hand-rule" *)
  inf_target : string;     (** [file\[#section\]:name] the constraint scopes to *)
  inf_doc : string;        (** one-line statement of the mined constraint *)
  inf_support : int;       (** supporting journal entries *)
  inf_confidence : float;  (** support / (support + contradictions) *)
  inf_verdict : string;
      (** differ verdict label: recovered / missed-by-hand /
          missed-by-inference / contradicted *)
}
(** One row of the inferred-constraints panel (doc/infer.md); [conferr
    infer] maps its candidates and rule-diff verdicts into it. *)

type repair_row = {
  rep_id : string;      (** target id: scenario id or file label *)
  rep_class : string;   (** fault class, or ["file"] *)
  rep_status : string;
      (** repaired / already-clean / unrepairable / skipped *)
  rep_distance : int;   (** character edit distance of the chosen repair *)
  rep_edits : int;      (** edits in the chosen repair *)
  rep_stock : bool;     (** repaired set equals the stock configuration *)
  rep_detail : string;  (** chosen-candidate description or skip reason *)
}
(** One row of the repairs panel (doc/repair.md); [conferr repair] maps
    its pipeline results into it. *)

type analysis_row = {
  an_rule : string;     (** rule id, e.g. ["PG-REL-FSM"] *)
  an_severity : string; (** severity label: error/warning/info *)
  an_file : string;
  an_address : string;  (** ConfPath address of the anchor site *)
  an_message : string;
  an_related : string;  (** other participating sites, pre-rendered *)
}
(** One row of the corpus-analysis panel (doc/lint.md's dataflow
    section); [conferr analyze] maps its findings into it. *)

val html :
  title:string -> rows:row list -> ?metrics_text:string ->
  ?gaps:gap_row list -> ?infer:infer_row list ->
  ?repairs:repair_row list -> ?analysis:analysis_row list -> unit -> string
(** The complete document.  [rows] in journal order (the frontier
    timeline reads order as campaign progress); [metrics_text] is a
    Prometheus exposition snapshot to mine for breaker/chaos panels and
    embed verbatim in a collapsible section; [gaps] adds the validator
    gaps panel (static verdict × dynamic outcome disagreements);
    [infer] adds the inferred-constraints panel (mined candidates vs
    hand-written rules); [repairs] adds the repairs panel (synthesized
    fixes per target); [analysis] adds the corpus-analysis panel
    (relation/reference-graph/taint findings). *)

val write_file :
  title:string -> rows:row list -> ?metrics_text:string ->
  ?gaps:gap_row list -> ?infer:infer_row list ->
  ?repairs:repair_row list -> ?analysis:analysis_row list -> string -> unit
