(** Span tracing for campaign runs (doc/obsv.md).

    Each executed scenario contributes one top-level span plus one
    child span per pipeline phase ({!Span.phase}), captured by a
    per-scenario {!Clock}.  Workers publish finished scenarios into
    per-domain ring buffers — appends after registration are
    lock-free, so tracing stays off the campaign's critical path; a
    full ring drops further scenarios (counted, never blocking).

    Export ({!chrome}) merges the rings and emits Chrome trace-event
    JSON loadable by Perfetto ([ui.perfetto.dev]) or
    [chrome://tracing].  The export is deterministic: scenarios are
    ordered by scenario id, span ids are FNV-1a hashes of stable
    names ({!Span.id}), and timeline coordinates are logical
    (scenario [k] occupies [[k*1000, (k+1)*1000)] µs, phase [j] within
    it [[k*1000 + j*10, …+10)]).  All wall-clock measurement is
    isolated in the single [args.wall] field
    (["<start_us>+<dur_us>@<domain>"]); exporting with
    [~mask_wall:true] blanks that field, making the output
    byte-identical across runs and [--jobs] settings. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds each per-domain ring (default 65536 scenarios). *)

val record : t -> id:string -> class_name:string -> Clock.t -> unit
(** Publish one finished scenario and its phase marks.  Called from
    worker domains; cheap (one hashtable lookup + array write). *)

val recorded : t -> int
(** Scenarios currently held across all rings. *)

val dropped : t -> int
(** Scenarios discarded because a ring was full. *)

val chrome : ?mask_wall:bool -> t -> string
(** The merged trace as Chrome trace-event JSON
    ([{"traceEvents": […], "displayTimeUnit": "ms"}]).
    [mask_wall] (default [false]) replaces every [args.wall] value
    with ["-"] — used by tests to assert byte-identity across
    [--jobs]. *)

val write_file : ?mask_wall:bool -> t -> string -> unit
(** [chrome] into a file (truncating), newline-terminated. *)
