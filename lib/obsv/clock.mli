(** Per-scenario phase clock.

    One clock follows one scenario through the pipeline: its {!probe}
    timestamps every phase the scenario passes through (a retried or
    quorum-re-voted scenario passes through the same phase several
    times; each pass is a separate mark).  The clock is the neutral
    middleman between the pipeline and the observability sinks: the
    tracer turns its marks into span events, the metrics registry into
    histogram observations, and the journal into the [phase_ms]
    field.

    Marks are mutex-protected: a watchdog thread abandoned by its
    timeout may still be inside a phase when the scenario is
    classified, and its late mark must not tear the list. *)

type t

type mark = {
  phase : Span.phase;
  seq : int;       (** 0-based recording order within this scenario *)
  start_s : float; (** wall clock, [Unix.gettimeofday] *)
  dur_s : float;
}

val create : unit -> t
(** Starts the scenario span now. *)

val probe : t -> Span.probe
(** A probe that appends one mark per wrapped phase.  Transparent:
    returns the wrapped function's value, re-raises its exceptions
    (recording the mark first). *)

val marks : t -> mark list
(** Every recorded mark, in recording order. *)

val started_s : t -> float
(** Wall-clock time of {!create}. *)

val elapsed_s : t -> float
(** Seconds since {!create}. *)

val phase_ms : t -> (string * float) list
(** Total milliseconds per phase, in canonical pipeline order, listing
    only phases that ran — the journal's [phase_ms] field.  Multiple
    passes through one phase (retries, quorum votes) are summed. *)
