type ev = {
  id : string;
  class_name : string;
  wall_start : float;
  domain : int;
  marks : Clock.mark list;
}

(* One ring per worker domain: the owning domain is the only writer
   after registration, so appends skip the registry lock. *)
type ring = { buf : ev option array; mutable n : int; mutable dropped : int }

type t = { lock : Mutex.t; capacity : int; rings : (int, ring) Hashtbl.t }

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { lock = Mutex.create (); capacity; rings = Hashtbl.create 8 }

let ring_for t domain =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.rings domain with
    | Some r -> r
    | None ->
      let r = { buf = Array.make t.capacity None; n = 0; dropped = 0 } in
      Hashtbl.add t.rings domain r;
      r
  in
  Mutex.unlock t.lock;
  r

let record t ~id ~class_name clock =
  let domain = (Domain.self () :> int) in
  let r = ring_for t domain in
  if r.n < Array.length r.buf then (
    r.buf.(r.n) <-
      Some { id; class_name; wall_start = Clock.started_s clock; domain; marks = Clock.marks clock };
    r.n <- r.n + 1)
  else r.dropped <- r.dropped + 1

let fold_rings t f init =
  Mutex.lock t.lock;
  let acc = Hashtbl.fold (fun _ r acc -> f acc r) t.rings init in
  Mutex.unlock t.lock;
  acc

let recorded t = fold_rings t (fun acc r -> acc + r.n) 0

let dropped t = fold_rings t (fun acc r -> acc + r.dropped) 0

let events t =
  fold_rings t
    (fun acc r ->
      let rec take i acc = if i < 0 then acc else take (i - 1) (Option.get r.buf.(i) :: acc) in
      take (r.n - 1) acc)
    []
  |> List.sort (fun a b -> compare (a.id, a.class_name) (b.id, b.class_name))

let us s = Float.round (s *. 1e6)

let wall_field mask ~start_s ~dur_s ~domain =
  if mask then "-" else Printf.sprintf "%.0f+%.0f@%d" (us start_s) (us dur_s) domain

(* Logical timeline: scenario k owns [k*1000, (k+1)*1000) µs, its j-th
   phase mark [k*1000 + j*10, +10).  All real timing lives in args.wall. *)
let chrome_event ~name ~cat ~ts ~dur ~span ~parent ~wall =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str cat);
       ("ph", Json.Str "X");
       ("ts", Json.Num ts);
       ("dur", Json.Num dur);
       ("pid", Json.Num 0.0);
       ("tid", Json.Num 0.0);
     ]
    @ [
        ( "args",
          Json.Obj
            ([ ("span", Json.Str span) ]
            @ (match parent with Some p -> [ ("parent", Json.Str p) ] | None -> [])
            @ [ ("wall", Json.Str wall) ]) );
      ])

let chrome ?(mask_wall = false) t =
  let evs = events t in
  let trace_events =
    List.concat (List.mapi
      (fun k ev ->
        let base = Float.of_int (k * 1000) in
        let span = Span.id ev.id in
        let wall_end =
          List.fold_left (fun acc (m : Clock.mark) -> Float.max acc (m.start_s +. m.dur_s)) ev.wall_start ev.marks
        in
        let scenario =
          chrome_event ~name:ev.id ~cat:ev.class_name ~ts:base ~dur:1000.0 ~span ~parent:None
            ~wall:(wall_field mask_wall ~start_s:ev.wall_start ~dur_s:(wall_end -. ev.wall_start) ~domain:ev.domain)
        in
        let phases =
          List.map
            (fun (m : Clock.mark) ->
              let label = Span.label m.phase in
              chrome_event ~name:label ~cat:ev.class_name
                ~ts:(base +. Float.of_int (m.seq * 10))
                ~dur:10.0
                ~span:(Span.id (Printf.sprintf "%s/%s#%d" ev.id label m.seq))
                ~parent:(Some span)
                ~wall:(wall_field mask_wall ~start_s:m.start_s ~dur_s:m.dur_s ~domain:ev.domain))
            ev.marks
        in
        scenario :: phases)
      evs)
  in
  Json.to_string
    (Json.Obj [ ("traceEvents", Json.Arr trace_events); ("displayTimeUnit", Json.Str "ms") ])

let write_file ?mask_wall t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (chrome ?mask_wall t);
      output_char oc '\n')
