type row = {
  id : string;
  class_name : string;
  outcome : string;
  detail : string;
  signature : string;
  elapsed_ms : float;
  attempts : int;
  flaky : bool;
  phase_ms : (string * float) list;
}

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fnum v = Printf.sprintf "%g" v

(* Outcome identity: fixed order, status colors reserved for state
   (startup = detected cleanly, crashed = took the harness down),
   series blue for functional detection, muted for n/a. *)
let outcome_order = [ "startup"; "functional"; "ignored"; "crashed"; "n/a" ]

let outcome_class o =
  match o with
  | "startup" -> "o-startup"
  | "functional" -> "o-functional"
  | "ignored" -> "o-ignored"
  | "crashed" -> "o-crashed"
  | _ -> "o-na"

let count pred rows = List.length (List.filter pred rows)

let distinct_signatures rows =
  List.length (List.sort_uniq compare (List.map (fun r -> r.signature) rows))

(* ---- SVG helpers (no scripts: charts are static markup) ---- *)

let svg_bars ?(width = 640) ?(height = 150) (data : (string * float) list) =
  let n = List.length data in
  let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 data in
  if n = 0 || vmax <= 0.0 then "<p class=\"muted\">no data</p>"
  else begin
    let top = 16 and bottom = 18 in
    let plot_h = height - top - bottom in
    let bw = Float.of_int (width - (2 * (n - 1))) /. Float.of_int n in
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf
         "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" role=\"img\">" width height width
         height);
    (* recessive gridline at the max level *)
    Buffer.add_string b
      (Printf.sprintf "<line x1=\"0\" y1=\"%d\" x2=\"%d\" y2=\"%d\" class=\"grid\"/>" top width top);
    let label_every = max 1 (n / 8) in
    List.iteri
      (fun i (label, v) ->
        let x = Float.of_int i *. (bw +. 2.0) in
        let h = Float.max (if v > 0.0 then 2.0 else 0.0) (v /. vmax *. Float.of_int plot_h) in
        let y = Float.of_int (top + plot_h) -. h in
        if v > 0.0 then
          Buffer.add_string b
            (Printf.sprintf
               "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" rx=\"2\" class=\"bar\"/>"
               x y bw h);
        if v = vmax then
          Buffer.add_string b
            (Printf.sprintf "<text x=\"%.1f\" y=\"%.1f\" class=\"val\">%s</text>"
               (x +. (bw /. 2.0)) (y -. 4.0) (fnum v));
        if i mod label_every = 0 then
          Buffer.add_string b
            (Printf.sprintf "<text x=\"%.1f\" y=\"%d\" class=\"tick\">%s</text>"
               (x +. (bw /. 2.0)) (height - 4) (esc label)))
      data;
    Buffer.add_string b "</svg>";
    Buffer.contents b
  end

let svg_frontier ?(width = 640) ?(height = 150) (points : (int * int) list) =
  match points with
  | [] -> "<p class=\"muted\">no data</p>"
  | _ ->
    let xmax = List.fold_left (fun acc (x, _) -> max acc x) 1 points in
    let ymax = List.fold_left (fun acc (_, y) -> max acc y) 1 points in
    let top = 16 and bottom = 18 in
    let plot_h = Float.of_int (height - top - bottom) in
    let px x = Float.of_int x /. Float.of_int xmax *. Float.of_int (width - 40) in
    let py y = Float.of_int (top) +. plot_h -. (Float.of_int y /. Float.of_int ymax *. plot_h) in
    let pts =
      String.concat " " (List.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (px x) (py y)) points)
    in
    let b = Buffer.create 512 in
    Buffer.add_string b
      (Printf.sprintf "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" role=\"img\">" width
         height width height);
    Buffer.add_string b
      (Printf.sprintf "<line x1=\"0\" y1=\"%d\" x2=\"%d\" y2=\"%d\" class=\"grid\"/>" top width top);
    Buffer.add_string b
      (Printf.sprintf
         "<polyline points=\"%s\" fill=\"none\" class=\"line\" stroke-width=\"2\"/>" pts);
    let lx, ly = (px xmax, py ymax) in
    Buffer.add_string b
      (Printf.sprintf "<text x=\"%.1f\" y=\"%.1f\" class=\"val\">%d</text>" (lx +. 6.0) ly ymax);
    Buffer.add_string b
      (Printf.sprintf "<text x=\"4\" y=\"%d\" class=\"tick\" text-anchor=\"start\">scenario %d</text>"
         (height - 4) xmax);
    Buffer.add_string b "</svg>";
    Buffer.contents b

(* Log-2 latency buckets shared with Metrics; trim empty tails for display. *)
let bucketize values =
  let bounds = Metrics.default_ms_buckets in
  let counts = Array.make (List.length bounds + 1) 0 in
  List.iter
    (fun v ->
      let rec place i = function
        | [] -> counts.(i) <- counts.(i) + 1
        | bound :: rest -> if v <= bound then counts.(i) <- counts.(i) + 1 else place (i + 1) rest
      in
      place 0 bounds)
    values;
  let labeled =
    List.mapi (fun i bound -> (Printf.sprintf "\xe2\x89\xa4%s" (fnum bound), Float.of_int counts.(i))) bounds
    @ [ (">16s", Float.of_int counts.(List.length bounds)) ]
  in
  (* keep the contiguous run from the first to the last non-empty bucket *)
  let arr = Array.of_list labeled in
  let n = Array.length arr in
  let first = ref n and last = ref (-1) in
  Array.iteri (fun i (_, v) -> if v > 0.0 then (if !first = n then first := i; last := i)) arr;
  if !last < 0 then [] else Array.to_list (Array.sub arr !first (!last - !first + 1))

(* ---- sections ---- *)

let tile label value sub =
  Printf.sprintf
    "<div class=\"tile\"><div class=\"tile-value\">%s</div><div class=\"tile-label\">%s</div>%s</div>"
    value (esc label)
    (if sub = "" then "" else Printf.sprintf "<div class=\"tile-sub\">%s</div>" (esc sub))

let legend =
  let item o name =
    Printf.sprintf "<span class=\"key\"><span class=\"swatch %s\"></span>%s</span>" (outcome_class o)
      name
  in
  "<p class=\"legend\">"
  ^ String.concat ""
      [
        item "startup" "startup detection";
        item "functional" "functional detection";
        item "ignored" "ignored";
        item "crashed" "crashed";
        item "n/a" "not applicable";
      ]
  ^ "</p>"

let stacked_bar counts total =
  if total = 0 then ""
  else
    let seg o =
      let c = List.assoc o counts in
      if c = 0 then ""
      else
        Printf.sprintf
          "<span class=\"seg %s\" style=\"flex-grow:%d\" title=\"%s: %d\"></span>" (outcome_class o)
          c (esc o) c
    in
    "<div class=\"stack\">" ^ String.concat "" (List.map seg outcome_order) ^ "</div>"

let class_table rows =
  let classes = List.sort_uniq compare (List.map (fun r -> r.class_name) rows) in
  let row_html cls =
    let mine = List.filter (fun r -> r.class_name = cls) rows in
    let counts = List.map (fun o -> (o, count (fun r -> r.outcome = o) mine)) outcome_order in
    let total = List.length mine in
    let na = List.assoc "n/a" counts in
    let detected =
      List.assoc "startup" counts + List.assoc "functional" counts + List.assoc "crashed" counts
    in
    let rate = if total - na = 0 then 0.0 else 100.0 *. Float.of_int detected /. Float.of_int (total - na) in
    Printf.sprintf
      "<tr><td class=\"mono\">%s</td><td class=\"num\">%d</td>%s<td class=\"num\">%.0f%%</td><td class=\"barcell\">%s</td></tr>"
      (esc cls) total
      (String.concat ""
         (List.map (fun (_, c) -> Printf.sprintf "<td class=\"num\">%d</td>" c) counts))
      rate (stacked_bar counts total)
  in
  "<table><thead><tr><th>class</th><th class=\"num\">total</th><th class=\"num\">startup</th><th \
   class=\"num\">functional</th><th class=\"num\">ignored</th><th class=\"num\">crashed</th><th \
   class=\"num\">n/a</th><th class=\"num\">detected</th><th></th></tr></thead><tbody>"
  ^ String.concat "" (List.map row_html classes)
  ^ "</tbody></table>"

let latency_section rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "<h3>End-to-end scenario latency (ms)</h3>";
  Buffer.add_string b (svg_bars (bucketize (List.map (fun r -> r.elapsed_ms) rows)));
  let phases =
    List.sort_uniq compare (List.concat_map (fun r -> List.map fst r.phase_ms) rows)
  in
  let ordered = List.filter (fun p -> List.mem p phases) (List.map Span.label Span.all) in
  List.iter
    (fun phase ->
      let vals = List.filter_map (fun r -> List.assoc_opt phase r.phase_ms) rows in
      if vals <> [] then begin
        Buffer.add_string b (Printf.sprintf "<h3>Phase: %s (ms)</h3>" (esc phase));
        Buffer.add_string b (svg_bars (bucketize vals))
      end)
    ordered;
  if ordered = [] then
    Buffer.add_string b
      "<p class=\"muted\">no per-phase timings in this journal \xe2\x80\x94 run with \
       <code>--trace</code> or <code>--metrics</code> to record them (journal v2.1).</p>";
  Buffer.contents b

let frontier_section rows =
  let seen = Hashtbl.create 64 in
  let points =
    List.mapi
      (fun i r ->
        if not (Hashtbl.mem seen r.signature) then Hashtbl.add seen r.signature ();
        (i + 1, Hashtbl.length seen))
      rows
  in
  svg_frontier ((0, 0) :: points)

let metric_total samples name =
  List.fold_left
    (fun acc (s : Metrics.sample) -> if s.sample_name = name then acc +. s.value else acc)
    0.0 samples

let metric_cells samples name =
  List.filter_map
    (fun (s : Metrics.sample) ->
      if s.sample_name = name then
        Some (String.concat " " (List.map (fun (_, v) -> v) s.labels), s.value)
      else None)
    samples

let hardening_section rows metrics_text =
  let b = Buffer.create 1024 in
  let crashed = List.filter (fun r -> r.outcome = "crashed") rows in
  let flaky = count (fun r -> r.flaky) rows in
  let retries = List.fold_left (fun acc r -> acc + (r.attempts - 1)) 0 rows in
  Buffer.add_string b
    (Printf.sprintf "<p>%d crashed scenario(s), %d flaky (passed on retry), %d retry attempt(s).</p>"
       (List.length crashed) flaky retries);
  (if crashed <> [] then begin
     let tbl = Hashtbl.create 16 in
     List.iter
       (fun r ->
         let n, example = try Hashtbl.find tbl r.signature with Not_found -> (0, r.id) in
         Hashtbl.replace tbl r.signature (n + 1, if r.id < example then r.id else example))
       crashed;
     let clusters =
       Hashtbl.fold (fun sig_ (n, ex) acc -> (n, sig_, ex) :: acc) tbl []
       |> List.sort (fun (n1, s1, _) (n2, s2, _) ->
              match compare n2 n1 with 0 -> compare s1 s2 | c -> c)
     in
     Buffer.add_string b
       "<table><thead><tr><th class=\"num\">count</th><th>crash signature</th><th>example</th></tr></thead><tbody>";
     List.iteri
       (fun i (n, sig_, ex) ->
         if i < 12 then
           Buffer.add_string b
             (Printf.sprintf
                "<tr><td class=\"num\">%d</td><td class=\"mono\">%s</td><td class=\"mono\">%s</td></tr>"
                n (esc sig_) (esc ex)))
       clusters;
     Buffer.add_string b "</tbody></table>"
   end);
  (match metrics_text with
  | None -> ()
  | Some text -> (
    match Metrics.parse_exposition text with
    | Error e -> Buffer.add_string b (Printf.sprintf "<p class=\"muted\">metrics unreadable: %s</p>" (esc e))
    | Ok samples ->
      let skipped = metric_total samples "conferr_breaker_skipped_total" in
      let trips = metric_cells samples "conferr_breaker_trips_total" in
      let chaos = metric_cells samples "conferr_chaos_injections_total" in
      if skipped > 0.0 || trips <> [] then begin
        Buffer.add_string b
          (Printf.sprintf "<p>Circuit breaker: %s scenario(s) skipped while open.</p>" (fnum skipped));
        List.iter
          (fun (bucket, v) ->
            Buffer.add_string b
              (Printf.sprintf "<p class=\"mono indent\">tripped %s \xc3\x97 %s</p>" (fnum v) (esc bucket)))
          trips
      end;
      if chaos <> [] then begin
        Buffer.add_string b "<p>Chaos injections:</p>";
        List.iter
          (fun (fault, v) ->
            Buffer.add_string b
              (Printf.sprintf "<p class=\"mono indent\">%s \xc3\x97 %s</p>" (esc fault) (fnum v)))
          chaos
      end));
  Buffer.contents b

type gap_row = {
  gap_id : string;
  gap_class : string;
  gap_static : string;
  gap_outcome : string;
  gap_kind : string;
  gap_detail : string;
}

let gap_kind_class = function
  | "silent-acceptance" -> "o-crashed"
  | "late-failure" -> "o-ignored"
  | "over-strict" -> "o-functional"
  | _ -> "o-na"

let gaps_section gaps =
  let b = Buffer.create 2048 in
  let is_gap g =
    match g.gap_kind with
    | "silent-acceptance" | "late-failure" | "over-strict" -> true
    | _ -> false
  in
  let kcount k = count (fun g -> g.gap_kind = k) gaps in
  Buffer.add_string b "<section class=\"tiles\">";
  Buffer.add_string b
    (tile "silent acceptance" (string_of_int (kcount "silent-acceptance"))
       "lint error, SUT started fine");
  Buffer.add_string b
    (tile "late failure" (string_of_int (kcount "late-failure"))
       "lint error, functional test failed");
  Buffer.add_string b
    (tile "over-strict" (string_of_int (kcount "over-strict"))
       "lint clean, SUT rejected");
  Buffer.add_string b
    (tile "agreement"
       (string_of_int (kcount "agree-detected" + kcount "agree-clean"))
       "static and dynamic verdicts match");
  Buffer.add_string b "</section>";
  let disagreements = List.filter is_gap gaps in
  (if disagreements = [] then
     Buffer.add_string b
       "<p class=\"muted\">no validator gaps: the static verdict matched the \
        dynamic outcome on every replayed mutant.</p>"
   else begin
     Buffer.add_string b
       "<table><thead><tr><th>scenario</th><th>class</th><th>static</th><th>dynamic</th><th>gap</th><th>detail</th></tr></thead><tbody>";
     let shown = 40 in
     List.iteri
       (fun i g ->
         if i < shown then
           Buffer.add_string b
             (Printf.sprintf
                "<tr><td class=\"mono\">%s</td><td class=\"mono\">%s</td><td>%s</td><td>%s</td><td><span class=\"key\"><span class=\"swatch %s\"></span>%s</span></td><td class=\"mono\">%s</td></tr>"
                (esc g.gap_id) (esc g.gap_class) (esc g.gap_static)
                (esc g.gap_outcome)
                (gap_kind_class g.gap_kind)
                (esc g.gap_kind) (esc g.gap_detail)))
       disagreements;
     Buffer.add_string b "</tbody></table>";
     if List.length disagreements > shown then
       Buffer.add_string b
         (Printf.sprintf
            "<p class=\"muted\">%d further disagreement(s) not shown \xe2\x80\x94 use <code>conferr gaps --format json</code> for the full list.</p>"
            (List.length disagreements - shown))
   end);
  Buffer.contents b

type infer_row = {
  inf_id : string;
  inf_kind : string;
  inf_target : string;
  inf_doc : string;
  inf_support : int;
  inf_confidence : float;
  inf_verdict : string;
}

let infer_verdict_class = function
  | "recovered" -> "o-startup"
  | "missed-by-hand" -> "o-ignored"
  | "missed-by-inference" -> "o-na"
  | "contradicted" -> "o-crashed"
  | _ -> "o-functional"

let infer_section infs =
  let b = Buffer.create 2048 in
  let vcount v = count (fun r -> r.inf_verdict = v) infs in
  Buffer.add_string b "<section class=\"tiles\">";
  Buffer.add_string b
    (tile "recovered" (string_of_int (vcount "recovered"))
       "hand-written rules re-derived from journals");
  Buffer.add_string b
    (tile "missed by hand" (string_of_int (vcount "missed-by-hand"))
       "mined candidates with no hand-written rule");
  Buffer.add_string b
    (tile "missed by inference" (string_of_int (vcount "missed-by-inference"))
       "hand-written rules the journals never exercised");
  Buffer.add_string b
    (tile "contradicted" (string_of_int (vcount "contradicted"))
       "hand-written rules the evidence refutes");
  Buffer.add_string b "</section>";
  if infs = [] then
    Buffer.add_string b
      "<p class=\"muted\">no inferred candidates: the journal holds no \
       usable evidence at the current thresholds.</p>"
  else begin
    Buffer.add_string b
      "<table><thead><tr><th>id</th><th>kind</th><th>target</th><th class=\"num\">support</th><th class=\"num\">confidence</th><th>verdict</th><th>constraint</th></tr></thead><tbody>";
    let shown = 40 in
    List.iteri
      (fun i r ->
        if i < shown then
          Buffer.add_string b
            (Printf.sprintf
               "<tr><td class=\"mono\">%s</td><td>%s</td><td class=\"mono\">%s</td><td class=\"num\">%d</td><td class=\"num\">%.2f</td><td><span class=\"key\"><span class=\"swatch %s\"></span>%s</span></td><td class=\"mono\">%s</td></tr>"
               (esc r.inf_id) (esc r.inf_kind) (esc r.inf_target)
               r.inf_support r.inf_confidence
               (infer_verdict_class r.inf_verdict)
               (esc r.inf_verdict) (esc r.inf_doc)))
      infs;
    Buffer.add_string b "</tbody></table>";
    if List.length infs > shown then
      Buffer.add_string b
        (Printf.sprintf
           "<p class=\"muted\">%d further row(s) not shown \xe2\x80\x94 use \
            <code>conferr infer --format json</code> for the full list.</p>"
           (List.length infs - shown))
  end;
  Buffer.contents b

type repair_row = {
  rep_id : string;
  rep_class : string;
  rep_status : string;
  rep_distance : int;
  rep_edits : int;
  rep_stock : bool;
  rep_detail : string;
}

let repair_status_class = function
  | "repaired" -> "o-startup"
  | "already-clean" -> "o-functional"
  | "unrepairable" -> "o-crashed"
  | _ -> "o-na"

let repairs_section reps =
  let b = Buffer.create 2048 in
  let scount s = count (fun r -> r.rep_status = s) reps in
  Buffer.add_string b "<section class=\"tiles\">";
  Buffer.add_string b
    (tile "repaired" (string_of_int (scount "repaired"))
       "lint-clean and SUT-accepted after the edits");
  Buffer.add_string b
    (tile "already clean" (string_of_int (scount "already-clean"))
       "no repair needed");
  Buffer.add_string b
    (tile "unrepairable" (string_of_int (scount "unrepairable"))
       "no candidate passed validation");
  Buffer.add_string b
    (tile "back to stock"
       (string_of_int (count (fun r -> r.rep_stock) reps))
       "repaired set equals the stock configuration");
  Buffer.add_string b "</section>";
  if reps = [] then
    Buffer.add_string b "<p class=\"muted\">no repair targets.</p>"
  else begin
    Buffer.add_string b
      "<table><thead><tr><th>target</th><th>class</th><th>status</th><th \
       class=\"num\">edits</th><th class=\"num\">distance</th><th>stock</th><th>repair</th></tr></thead><tbody>";
    let shown = 40 in
    List.iteri
      (fun i r ->
        if i < shown then
          Buffer.add_string b
            (Printf.sprintf
               "<tr><td class=\"mono\">%s</td><td class=\"mono\">%s</td><td><span class=\"key\"><span class=\"swatch %s\"></span>%s</span></td><td class=\"num\">%d</td><td class=\"num\">%d</td><td>%s</td><td class=\"mono\">%s</td></tr>"
               (esc r.rep_id) (esc r.rep_class)
               (repair_status_class r.rep_status)
               (esc r.rep_status) r.rep_edits r.rep_distance
               (if r.rep_stock then "yes" else "\xe2\x80\x94")
               (esc r.rep_detail)))
      reps;
    Buffer.add_string b "</tbody></table>";
    if List.length reps > shown then
      Buffer.add_string b
        (Printf.sprintf
           "<p class=\"muted\">%d further target(s) not shown \xe2\x80\x94 use \
            <code>conferr repair --format json</code> for the full list.</p>"
           (List.length reps - shown))
  end;
  Buffer.contents b

type analysis_row = {
  an_rule : string;
  an_severity : string;
  an_file : string;
  an_address : string;
  an_message : string;
  an_related : string;
}

let analysis_severity_class = function
  | "error" -> "o-crashed"
  | "warning" -> "o-ignored"
  | _ -> "o-functional"

let analysis_section ans =
  let b = Buffer.create 2048 in
  let scount s = count (fun r -> r.an_severity = s) ans in
  Buffer.add_string b "<section class=\"tiles\">";
  Buffer.add_string b
    (tile "findings" (string_of_int (List.length ans))
       "corpus-level (dataflow) findings");
  Buffer.add_string b
    (tile "errors" (string_of_int (scount "error")) "relation violations");
  Buffer.add_string b
    (tile "warnings" (string_of_int (scount "warning"))
       "shadowing, ordering, graph");
  Buffer.add_string b
    (tile "info" (string_of_int (scount "info")) "silent-default taint");
  Buffer.add_string b "</section>";
  if ans = [] then
    Buffer.add_string b
      "<p class=\"muted\">no dataflow findings: every relation holds and no \
       written value is masked.</p>"
  else begin
    Buffer.add_string b
      "<table><thead><tr><th>rule</th><th>severity</th><th>site</th><th>finding</th><th>related</th></tr></thead><tbody>";
    let shown = 40 in
    List.iteri
      (fun i r ->
        if i < shown then
          Buffer.add_string b
            (Printf.sprintf
               "<tr><td class=\"mono\">%s</td><td><span class=\"key\"><span \
                class=\"swatch %s\"></span>%s</span></td><td \
                class=\"mono\">%s:%s</td><td class=\"mono\">%s</td><td \
                class=\"mono\">%s</td></tr>"
               (esc r.an_rule)
               (analysis_severity_class r.an_severity)
               (esc r.an_severity) (esc r.an_file) (esc r.an_address)
               (esc r.an_message) (esc r.an_related)))
      ans;
    Buffer.add_string b "</tbody></table>";
    if List.length ans > shown then
      Buffer.add_string b
        (Printf.sprintf
           "<p class=\"muted\">%d further finding(s) not shown \xe2\x80\x94 use \
            <code>conferr analyze --format json</code> for the full list.</p>"
           (List.length ans - shown))
  end;
  Buffer.contents b

let css =
  {|
:root {
  --surface: #fcfcfb; --ink: #1a1a19; --muted: #898781; --grid: #e1e0d9;
  --card: #ffffff; --series: #2a78d6;
  --good: #0ca30c; --serious: #ec835a; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #f1efe9; --muted: #898781; --grid: #2c2c2a;
    --card: #222220; --series: #3987e5;
    --good: #2fb52f; --serious: #ec835a; --critical: #e25f5f;
  }
}
* { box-sizing: border-box; }
body { margin: 0 auto; padding: 24px; max-width: 960px; background: var(--surface);
       color: var(--ink); font: 14px/1.5 system-ui, sans-serif; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
h3 { font-size: 13px; margin: 16px 0 4px; color: var(--muted); font-weight: 600; }
.sub, .muted { color: var(--muted); }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin-top: 16px; }
.tile { background: var(--card); border: 1px solid var(--grid); border-radius: 8px;
        padding: 10px 14px; min-width: 120px; }
.tile-value { font-size: 22px; font-weight: 650; font-variant-numeric: tabular-nums; }
.tile-label { color: var(--muted); font-size: 12px; }
.tile-sub { color: var(--muted); font-size: 11px; }
table { border-collapse: collapse; width: 100%; margin: 8px 0; }
th, td { text-align: left; padding: 4px 8px; border-bottom: 1px solid var(--grid); }
th { color: var(--muted); font-weight: 600; font-size: 12px; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.mono { font-family: ui-monospace, monospace; font-size: 12px; }
.indent { margin: 0 0 0 16px; }
.barcell { min-width: 140px; }
.stack { display: flex; gap: 2px; height: 10px; }
.seg { border-radius: 2px; min-width: 2px; }
.o-startup { background: var(--good); }
.o-functional { background: var(--series); }
.o-ignored { background: var(--serious); }
.o-crashed { background: var(--critical); }
.o-na { background: var(--muted); }
.legend { display: flex; flex-wrap: wrap; gap: 14px; color: var(--muted); font-size: 12px; }
.key { display: inline-flex; align-items: center; gap: 5px; }
.swatch { width: 10px; height: 10px; border-radius: 2px; display: inline-block; }
svg { display: block; margin: 4px 0 12px; max-width: 100%; }
svg .bar { fill: var(--series); }
svg .line { stroke: var(--series); }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg text { fill: var(--muted); font: 10px system-ui, sans-serif; text-anchor: middle; }
svg .val { fill: var(--ink); font-weight: 600; }
details { margin: 24px 0; }
pre { background: var(--card); border: 1px solid var(--grid); border-radius: 8px;
      padding: 12px; overflow-x: auto; font-size: 11px; }
code { font-family: ui-monospace, monospace; }
|}

let html ~title ~rows ?metrics_text ?gaps ?infer ?repairs ?analysis () =
  let total = List.length rows in
  let na = count (fun r -> r.outcome = "n/a") rows in
  let detected =
    count (fun r -> r.outcome = "startup" || r.outcome = "functional" || r.outcome = "crashed") rows
  in
  let rate =
    if total - na = 0 then 0.0 else 100.0 *. Float.of_int detected /. Float.of_int (total - na)
  in
  let wall = List.fold_left (fun acc r -> acc +. r.elapsed_ms) 0.0 rows in
  let b = Buffer.create 16384 in
  Buffer.add_string b "<!doctype html><html lang=\"en\"><head><meta charset=\"utf-8\">";
  Buffer.add_string b
    "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">";
  Buffer.add_string b (Printf.sprintf "<title>%s</title>" (esc title));
  Buffer.add_string b "<style>";
  Buffer.add_string b css;
  Buffer.add_string b "</style></head><body>";
  Buffer.add_string b (Printf.sprintf "<header><h1>%s</h1>" (esc title));
  Buffer.add_string b
    (Printf.sprintf "<p class=\"sub\">conferr resilience report \xc2\xb7 %d scenario(s)</p></header>"
       total);
  Buffer.add_string b "<section class=\"tiles\">";
  Buffer.add_string b (tile "scenarios" (string_of_int total) (Printf.sprintf "%d applicable" (total - na)));
  Buffer.add_string b (tile "detection rate" (Printf.sprintf "%.0f%%" rate) "startup + functional + crashed");
  Buffer.add_string b (tile "crashed" (string_of_int (count (fun r -> r.outcome = "crashed") rows)) "");
  Buffer.add_string b (tile "distinct signatures" (string_of_int (distinct_signatures rows)) "");
  Buffer.add_string b (tile "flaky" (string_of_int (count (fun r -> r.flaky) rows)) "passed on retry");
  Buffer.add_string b (tile "SUT wall time" (Printf.sprintf "%.0f ms" wall) "sum over scenarios");
  Buffer.add_string b "</section>";
  Buffer.add_string b "<section><h2>Resilience profile</h2>";
  Buffer.add_string b legend;
  Buffer.add_string b (class_table rows);
  Buffer.add_string b "</section>";
  Buffer.add_string b "<section><h2>Latency</h2>";
  Buffer.add_string b (latency_section rows);
  Buffer.add_string b "</section>";
  Buffer.add_string b "<section><h2>Discovery frontier</h2>";
  Buffer.add_string b
    "<p class=\"muted\">distinct outcome signatures over campaign progress</p>";
  Buffer.add_string b (frontier_section rows);
  Buffer.add_string b "</section>";
  Buffer.add_string b "<section><h2>Hardening</h2>";
  Buffer.add_string b (hardening_section rows metrics_text);
  Buffer.add_string b "</section>";
  (match gaps with
  | None -> ()
  | Some gaps ->
    Buffer.add_string b "<section><h2>Validator gaps</h2>";
    Buffer.add_string b
      "<p class=\"muted\">static lint verdict \xc3\x97 dynamic outcome for every \
       replayed mutant (doc/lint.md)</p>";
    Buffer.add_string b (gaps_section gaps);
    Buffer.add_string b "</section>");
  (match infer with
  | None -> ()
  | Some infs ->
    Buffer.add_string b "<section><h2>Inferred constraints</h2>";
    Buffer.add_string b
      "<p class=\"muted\">constraint candidates mined from the campaign \
       journal, diffed against the hand-written rule set (doc/infer.md)</p>";
    Buffer.add_string b (infer_section infs);
    Buffer.add_string b "</section>");
  (match repairs with
  | None -> ()
  | Some reps ->
    Buffer.add_string b "<section><h2>Repairs</h2>";
    Buffer.add_string b
      "<p class=\"muted\">synthesized minimal edits making each broken \
       configuration lint-clean and SUT-accepted (doc/repair.md)</p>";
    Buffer.add_string b (repairs_section reps);
    Buffer.add_string b "</section>");
  (match analysis with
  | None -> ()
  | Some ans ->
    Buffer.add_string b "<section><h2>Corpus analysis</h2>";
    Buffer.add_string b
      "<p class=\"muted\">abstract interpretation over the whole \
       configuration set: relation checks, cross-file reference graph, \
       silent-default taint (doc/lint.md)</p>";
    Buffer.add_string b (analysis_section ans);
    Buffer.add_string b "</section>");
  (match metrics_text with
  | Some text when String.trim text <> "" ->
    Buffer.add_string b "<details><summary>Raw metrics snapshot</summary><pre>";
    Buffer.add_string b (esc text);
    Buffer.add_string b "</pre></details>"
  | _ -> ());
  Buffer.add_string b "</body></html>\n";
  Buffer.contents b

let write_file ~title ~rows ?metrics_text ?gaps ?infer ?repairs ?analysis path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (html ~title ~rows ?metrics_text ?gaps ?infer ?repairs ?analysis ()))
