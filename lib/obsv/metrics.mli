(** Campaign metrics registry (doc/obsv.md).

    One registry per campaign collects counters, gauges and
    log-bucketed histograms, each optionally labeled (by convention:
    [sut], [class], [outcome], [phase]…).  The registry is
    mutex-protected and shared freely across worker domains; a metric
    springs into existence on first use, or can be {!declare}d up front
    to attach a help string.

    The snapshot is exported in the Prometheus text exposition format
    ({!expose}), deterministically ordered (sorted by metric name, then
    by label set) so two identical campaigns produce byte-identical
    snapshots whenever their measured values agree.  {!parse_exposition}
    reads the same format back; [parse_exposition (expose t)] yields
    exactly [samples t]. *)

type t

type kind = Counter | Gauge | Histogram

val create : unit -> t

val declare : ?help:string -> ?buckets:float list -> t -> kind -> string -> unit
(** Register a metric family up front.  [help] becomes the [# HELP]
    line; [buckets] (histograms only) are the upper bounds of the
    finite buckets, strictly increasing — default
    {!default_ms_buckets}.  Re-declaring an existing family with a
    different kind raises [Invalid_argument]; re-declaring with the
    same kind just updates the help string. *)

val default_ms_buckets : float list
(** The log-2 millisecond ladder used for duration histograms:
    [0.0625, 0.125, 0.25, …, 16384] (a [+Inf] bucket is implicit). *)

val inc : ?by:float -> ?labels:(string * string) list -> t -> string -> unit
(** Increment a counter (auto-declared on first use).  [by] defaults
    to 1 and must be non-negative. *)

val set : ?labels:(string * string) list -> t -> string -> float -> unit
(** Set a gauge (auto-declared on first use). *)

val observe : ?labels:(string * string) list -> t -> string -> float -> unit
(** Record one histogram observation (auto-declared on first use with
    {!default_ms_buckets}). *)

val value : ?labels:(string * string) list -> t -> string -> float option
(** Current value of one counter/gauge cell; [None] if the cell does
    not exist (or names a histogram). *)

val family : t -> string -> ((string * string) list * float) list
(** Every (label set, value) cell of one counter/gauge family, sorted
    by label set — deterministic.  Empty for unknown families and for
    histograms. *)

type sample = {
  sample_name : string;
  labels : (string * string) list;  (** sorted by label name *)
  value : float;
}

val samples : t -> sample list
(** The flattened snapshot, in exposition order.  A histogram family
    expands Prometheus-style into cumulative [name_bucket{le="…"}]
    samples plus [name_sum] and [name_count]. *)

val expose : t -> string
(** Prometheus text exposition format, with [# HELP]/[# TYPE] headers. *)

val write_file : t -> string -> unit
(** [expose] into a file (truncating). *)

val parse_exposition : string -> (sample list, string) result
(** Parse the text exposition format back into samples (comment and
    blank lines are skipped).  Inverse of {!expose} up to histogram
    structure: the round-trip returns exactly {!samples}. *)
