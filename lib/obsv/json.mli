(** Minimal JSON encoder/decoder shared by the result journal
    ([lib/exec]) and the trace exporter ([Trace]).

    Both consumers need exactly the JSON subset below (objects of
    strings, numbers, and arrays, one value per line); depending on an
    external JSON package for that would be the only third-party data
    dependency in the tree, so the codec is written out here.  Strings
    are treated as raw bytes: any byte outside printable ASCII is
    emitted as a [\u00XX] escape, so emitted lines are always 7-bit
    clean and newline-free.

    The module grew up as [Conferr_exec.Json] and is still re-exported
    under that name; it lives in [lib/obsv] because the observability
    layer sits below the executor in the dependency order. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One-line rendering (no newlines, no insignificant whitespace). *)

val of_string : string -> (t, string) result
(** Parse one value; trailing garbage is an error.  Only the constructs
    [to_string] emits are guaranteed to round-trip. *)

(** {1 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val str_list : t -> string list option
