type kind = Counter | Gauge | Histogram

type hist = { bounds : float array; counts : float array; mutable sum : float; mutable count : float }

type cell = Scalar of float ref | Hist of hist

type fam = {
  kind : kind;
  mutable help : string option;
  buckets : float list;  (* histograms only *)
  cells : ((string * string) list, cell) Hashtbl.t;
}

type t = { lock : Mutex.t; fams : (string, fam) Hashtbl.t }

let create () = { lock = Mutex.create (); fams = Hashtbl.create 32 }

let default_ms_buckets = List.init 19 (fun i -> 0.0625 *. Float.of_int (1 lsl i))

let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram"

let valid_name name =
  name <> ""
  && String.for_all
       (fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = ':')
       name

let rec strictly_increasing = function
  | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
  | _ -> true

(* Callers hold the lock. *)
let get_fam t kind ?(buckets = default_ms_buckets) name =
  match Hashtbl.find_opt t.fams name with
  | Some f ->
    if f.kind <> kind then
      invalid_arg
        (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name f.kind) (kind_name kind));
    f
  | None ->
    if not (valid_name name) then invalid_arg ("Metrics: invalid metric name " ^ name);
    if kind = Histogram && not (strictly_increasing buckets && buckets <> []) then
      invalid_arg ("Metrics: buckets for " ^ name ^ " must be non-empty and strictly increasing");
    let f = { kind; help = None; buckets; cells = Hashtbl.create 8 } in
    Hashtbl.add t.fams name f;
    f

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    Mutex.unlock t.lock;
    Printexc.raise_with_backtrace e bt

let declare ?help ?buckets t kind name =
  with_lock t (fun () ->
      let f = get_fam t kind ?buckets name in
      match help with Some _ -> f.help <- help | None -> ())

(* Hot updates pass literal label lists that are already in canonical
   order; checking beats re-sorting (and re-allocating) on every call. *)
let rec is_sorted = function
  | a :: (b :: _ as rest) -> compare a b <= 0 && is_sorted rest
  | _ -> true

let norm_labels labels = if is_sorted labels then labels else List.sort compare labels

let scalar_cell f labels =
  match Hashtbl.find_opt f.cells labels with
  | Some (Scalar r) -> r
  | Some (Hist _) -> assert false
  | None ->
    let r = ref 0.0 in
    Hashtbl.add f.cells labels (Scalar r);
    r

let inc ?(by = 1.0) ?(labels = []) t name =
  if by < 0.0 then invalid_arg ("Metrics: negative increment of counter " ^ name);
  with_lock t (fun () ->
      let f = get_fam t Counter name in
      let r = scalar_cell f (norm_labels labels) in
      r := !r +. by)

let set ?(labels = []) t name v =
  with_lock t (fun () ->
      let f = get_fam t Gauge name in
      let r = scalar_cell f (norm_labels labels) in
      r := v)

let observe ?(labels = []) t name v =
  with_lock t (fun () ->
      let f = get_fam t Histogram name in
      let labels = norm_labels labels in
      let h =
        match Hashtbl.find_opt f.cells labels with
        | Some (Hist h) -> h
        | Some (Scalar _) -> assert false
        | None ->
          let bounds = Array.of_list f.buckets in
          let h = { bounds; counts = Array.make (Array.length bounds) 0.0; sum = 0.0; count = 0.0 } in
          Hashtbl.add f.cells labels (Hist h);
          h
      in
      (* Buckets are le-inclusive: the first bound >= v takes the hit. *)
      let n = Array.length h.bounds in
      let rec place i = if i < n then if v <= h.bounds.(i) then h.counts.(i) <- h.counts.(i) +. 1.0 else place (i + 1) in
      place 0;
      h.sum <- h.sum +. v;
      h.count <- h.count +. 1.0)

let value ?(labels = []) t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.fams name with
      | None -> None
      | Some f -> (
        match Hashtbl.find_opt f.cells (norm_labels labels) with
        | Some (Scalar r) -> Some !r
        | Some (Hist _) | None -> None))

let family t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.fams name with
      | None -> []
      | Some f ->
        Hashtbl.fold
          (fun labels cell acc -> match cell with Scalar r -> (labels, !r) :: acc | Hist _ -> acc)
          f.cells []
        |> List.sort compare)

type sample = {
  sample_name : string;
  labels : (string * string) list;
  value : float;
}

(* Exact decimal rendering: integers print bare, everything else with
   enough digits that [float_of_string] recovers the same float. *)
let fmt v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let sorted_fams t =
  Hashtbl.fold (fun name f acc -> (name, f) :: acc) t.fams [] |> List.sort compare

let sorted_cells f = Hashtbl.fold (fun l c acc -> (l, c) :: acc) f.cells [] |> List.sort compare

let samples_of_cell name labels cell =
  match cell with
  | Scalar r -> [ { sample_name = name; labels; value = !r } ]
  | Hist h ->
    let cum = ref 0.0 in
    let buckets =
      Array.to_list
        (Array.mapi
           (fun i bound ->
             cum := !cum +. h.counts.(i);
             { sample_name = name ^ "_bucket"; labels = norm_labels (("le", fmt bound) :: labels); value = !cum })
           h.bounds)
    in
    buckets
    @ [
        { sample_name = name ^ "_bucket"; labels = norm_labels (("le", "+Inf") :: labels); value = h.count };
        { sample_name = name ^ "_sum"; labels; value = h.sum };
        { sample_name = name ^ "_count"; labels; value = h.count };
      ]

let samples t =
  with_lock t (fun () ->
      List.concat_map
        (fun (name, f) ->
          List.concat_map (fun (labels, cell) -> samples_of_cell name labels cell) (sorted_cells f))
        (sorted_fams t))

let escape_label_value v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let sample_line s =
  let labels =
    match s.labels with
    | [] -> ""
    | ls ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) ls)
      ^ "}"
  in
  Printf.sprintf "%s%s %s" s.sample_name labels (fmt s.value)

let expose t =
  let b = Buffer.create 4096 in
  with_lock t (fun () ->
      List.iter
        (fun (name, f) ->
          (match f.help with
          | Some h ->
            Buffer.add_string b
              (Printf.sprintf "# HELP %s %s\n" name (String.map (fun c -> if c = '\n' then ' ' else c) h))
          | None -> ());
          Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name (kind_name f.kind));
          List.iter
            (fun (labels, cell) ->
              List.iter
                (fun s ->
                  Buffer.add_string b (sample_line s);
                  Buffer.add_char b '\n')
                (samples_of_cell name labels cell))
            (sorted_cells f))
        (sorted_fams t));
  Buffer.contents b

let write_file t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (expose t))

(* ---- parsing the exposition format back ---- *)

let parse_value s =
  match String.lowercase_ascii s with
  | "+inf" | "inf" -> Some Float.infinity
  | "-inf" -> Some Float.neg_infinity
  | "nan" -> Some Float.nan
  | _ -> float_of_string_opt s

let parse_labels line i0 =
  (* [i0] points just past '{'.  Returns (labels, index past '}'). *)
  let n = String.length line in
  let rec loop i acc =
    if i >= n then Error "unterminated label set"
    else if line.[i] = '}' then Ok (List.rev acc, i + 1)
    else
      let i = if line.[i] = ',' then i + 1 else i in
      match String.index_from_opt line i '=' with
      | None -> Error "label without '='"
      | Some eq ->
        let key = String.sub line i (eq - i) in
        if eq + 1 >= n || line.[eq + 1] <> '"' then Error "label value not quoted"
        else
          let b = Buffer.create 16 in
          let rec scan j =
            if j >= n then Error "unterminated label value"
            else
              match line.[j] with
              | '"' -> Ok (j + 1)
              | '\\' when j + 1 < n ->
                (match line.[j + 1] with
                | 'n' -> Buffer.add_char b '\n'
                | c -> Buffer.add_char b c);
                scan (j + 2)
              | c ->
                Buffer.add_char b c;
                scan (j + 1)
          in
          (match scan (eq + 2) with
          | Error e -> Error e
          | Ok j -> loop j ((key, Buffer.contents b) :: acc))
  in
  loop i0 []

let parse_line line =
  match String.index_opt line '{' with
  | Some brace ->
    let name = String.sub line 0 brace in
    (match parse_labels line (brace + 1) with
    | Error e -> Error e
    | Ok (labels, after) ->
      let rest = String.trim (String.sub line after (String.length line - after)) in
      (match parse_value rest with
      | Some v -> Ok { sample_name = name; labels = norm_labels labels; value = v }
      | None -> Error ("bad value " ^ rest)))
  | None -> (
    match String.index_opt line ' ' with
    | None -> Error "missing value"
    | Some sp ->
      let name = String.sub line 0 sp in
      let rest = String.trim (String.sub line sp (String.length line - sp)) in
      (match parse_value rest with
      | Some v -> Ok { sample_name = name; labels = []; value = v }
      | None -> Error ("bad value " ^ rest)))

let parse_exposition text =
  let lines = String.split_on_char '\n' text in
  let rec loop n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then loop (n + 1) acc rest
      else (
        match parse_line line with
        | Ok s -> loop (n + 1) (s :: acc) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  loop 1 [] lines
