type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when c < ' ' || c > '~' ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s -> escape_string buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        encode buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        encode buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  encode buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_failure of string

type cursor = { text : string; mutable pos : int }

let fail c msg = raise (Parse_failure (Printf.sprintf "%s at byte %d" msg c.pos))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  if
    c.pos + String.length word <= String.length c.text
    && String.sub c.text c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_hex4 c =
  if c.pos + 4 > String.length c.text then fail c "truncated \\u escape";
  let s = String.sub c.text c.pos 4 in
  match int_of_string_opt ("0x" ^ s) with
  | None -> fail c "bad \\u escape"
  | Some n ->
    c.pos <- c.pos + 4;
    n

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '"' -> advance c; Buffer.add_char buf '"'; loop ()
       | Some '\\' -> advance c; Buffer.add_char buf '\\'; loop ()
       | Some '/' -> advance c; Buffer.add_char buf '/'; loop ()
       | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
       | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
       | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
       | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
       | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
       | Some 'u' ->
         advance c;
         let n = parse_hex4 c in
         (* we only emit \u00XX for raw bytes; decode anything wider as
            UTF-8 so foreign journals still load *)
         if n < 0x80 then Buffer.add_char buf (Char.chr n)
         else if n < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (n lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (n land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (n lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((n lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (n land 0x3F)))
         end;
         loop ()
       | _ -> fail c "bad escape")
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  match float_of_string_opt (String.sub c.text start (c.pos - start)) with
  | Some f -> f
  | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      Arr (elements [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let of_string text =
  let c = { text; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos = String.length text then Ok v else Error "trailing garbage"
  | exception Parse_failure msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let str = function Str s -> Some s | _ -> None

let num = function Num f -> Some f | _ -> None

let str_list = function
  | Arr xs ->
    List.fold_right
      (fun x acc ->
        match (x, acc) with Str s, Some rest -> Some (s :: rest) | _ -> None)
      xs (Some [])
  | _ -> None
