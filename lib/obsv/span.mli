(** Span vocabulary of the observability layer (doc/obsv.md).

    Every scenario's trip through the pipeline decomposes into five
    phases; a span covers one phase of one scenario (or the whole
    scenario, for the parent span).  Span identifiers are deterministic
    — a pure hash of the scenario id and phase — so two runs of the
    same campaign produce the same ids whatever the scheduling. *)

type phase =
  | Generate   (** apply the mutation to the abstract configuration *)
  | Serialize  (** render the mutated tree back into native files *)
  | Spawn      (** boot the SUT on the faulty files *)
  | Run        (** drive the functional tests *)
  | Classify   (** fold the results into an {!Conferr.Outcome.t} *)

val all : phase list
(** Pipeline order: generate, serialize, spawn, run, classify. *)

val label : phase -> string
(** ["generate"], ["serialize"], ["spawn"], ["run"], ["classify"]. *)

val of_label : string -> phase option
(** Inverse of {!label}. *)

val index : phase -> int
(** Position in {!all} — the canonical sort key. *)

val id : string -> string
(** Deterministic span id: 16 hex digits of an FNV-1a hash of the
    argument.  The scenario span hashes the scenario id; a phase span
    hashes ["<scenario-id>/<phase>#<seq>"]. *)

type probe = { wrap : 'a. phase -> (unit -> 'a) -> 'a }
(** A phase hook threaded into the execution pipeline: [wrap phase f]
    runs [f] and may time it, emit a span, count it…  It must be
    transparent — return [f ()]'s value and let exceptions through
    (timing hooks record the span in a [finally]). *)

val null : probe
(** The inert probe: [wrap _ f = f ()].  Pipelines default to it, so
    observability off costs one closure call per phase. *)
