type mark = { phase : Span.phase; seq : int; start_s : float; dur_s : float }

type t = {
  t0 : float;
  lock : Mutex.t;
  mutable marks_rev : mark list;
  mutable next_seq : int;
}

let create () =
  { t0 = Unix.gettimeofday (); lock = Mutex.create (); marks_rev = []; next_seq = 0 }

let push t phase start_s dur_s =
  Mutex.lock t.lock;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.marks_rev <- { phase; seq; start_s; dur_s } :: t.marks_rev;
  Mutex.unlock t.lock

let probe t =
  {
    Span.wrap =
      (fun phase f ->
        let start_s = Unix.gettimeofday () in
        match f () with
        | v ->
          push t phase start_s (Unix.gettimeofday () -. start_s);
          v
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          push t phase start_s (Unix.gettimeofday () -. start_s);
          Printexc.raise_with_backtrace e bt);
  }

let marks t =
  Mutex.lock t.lock;
  let ms = List.rev t.marks_rev in
  Mutex.unlock t.lock;
  ms

let started_s t = t.t0

let elapsed_s t = Unix.gettimeofday () -. t.t0

let phase_ms t =
  let ms = marks t in
  List.filter_map
    (fun phase ->
      match List.filter (fun m -> m.phase = phase) ms with
      | [] -> None
      | passes ->
        let total = List.fold_left (fun acc m -> acc +. m.dur_s) 0.0 passes in
        Some (Span.label phase, total *. 1000.))
    Span.all
