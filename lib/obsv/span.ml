type phase = Generate | Serialize | Spawn | Run | Classify

let all = [ Generate; Serialize; Spawn; Run; Classify ]

let label = function
  | Generate -> "generate"
  | Serialize -> "serialize"
  | Spawn -> "spawn"
  | Run -> "run"
  | Classify -> "classify"

let of_label = function
  | "generate" -> Some Generate
  | "serialize" -> Some Serialize
  | "spawn" -> Some Spawn
  | "run" -> Some Run
  | "classify" -> Some Classify
  | _ -> None

let index = function
  | Generate -> 0
  | Serialize -> 1
  | Spawn -> 2
  | Run -> 3
  | Classify -> 4

(* FNV-1a, 64-bit: the same deterministic, scheduling-independent hash
   family the executor uses for per-scenario seeds. *)
let id s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  Printf.sprintf "%016Lx" !h

type probe = { wrap : 'a. phase -> (unit -> 'a) -> 'a }

let null = { wrap = (fun _ f -> f ()) }
