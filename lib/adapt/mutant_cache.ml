module Engine = Conferr.Engine
module Scenario = Errgen.Scenario

type t = { table : (string, string) Hashtbl.t; mutable hits : int }

type verdict =
  | Fresh of { digest : string; files : (string * string) list }
  | Duplicate_of of { digest : string; first_id : string }
  | Inexpressible of string

let create () = { table = Hashtbl.create 256; hits = 0 }

let digest_files files =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, text) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\x00';
      Buffer.add_string buf text;
      Buffer.add_char buf '\x01')
    files;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* The Inexpressible messages mirror Engine.run_scenario's
   Not_applicable classification byte for byte, so an adaptive campaign
   profiles inexpressible scenarios identically to the exhaustive path. *)
let classify t ~sut ~base (s : Scenario.t) =
  match s.apply base with
  | exception exn ->
    Inexpressible
      (Printf.sprintf "scenario raised: %s" (Printexc.to_string exn))
  | Error msg -> Inexpressible msg
  | Ok mutated ->
    (match Engine.serialize_config sut mutated with
     | Error msg -> Inexpressible msg
     | Ok files ->
       let digest = digest_files files in
       (match Hashtbl.find_opt t.table digest with
        | Some first_id ->
          t.hits <- t.hits + 1;
          Duplicate_of { digest; first_id }
        | None ->
          Hashtbl.add t.table digest s.id;
          Fresh { digest; files }))

let size t = Hashtbl.length t.table

let hits t = t.hits
