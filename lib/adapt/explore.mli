(** Feedback-directed campaign search (see [doc/adapt.md]).

    Instead of executing a fixed faultload end to end, [Explore] pulls
    scenarios from a lazy stream ({!Errgen.Gen}), skips byte-identical
    mutants ({!Mutant_cache}), and schedules batches by {e novelty}:
    per-(fault class x target file) buckets carry an energy that is
    boosted when a bucket's scenarios keep producing previously unseen
    outcome signatures ({!Conferr_exec.Signature}) and decayed when a
    bucket saturates.  The loop stops on a scenario budget, a wall-clock
    budget, [plateau] consecutive batches without a new signature, or
    stream exhaustion, and reports the {e signature frontier}: the first
    scenario to discover each distinct failure mode and the batch in
    which it was found.

    Determinism: batch composition, energies, the frontier, and the
    profile derive only from the campaign seed and the (deterministic)
    per-scenario outcomes — never from scheduling — so for a fixed
    stream and settings the report is byte-identical for any [jobs].
    The only exception is the opt-in wall-clock budget, which stops at a
    time-dependent batch boundary. *)

type settings = {
  jobs : int;  (** worker domains for each batch; 1 = sequential *)
  batch : int;  (** scenarios scheduled per batch *)
  budget : int option;
      (** stop once this many SUT executions have run (checked at batch
          boundaries, so a run can overshoot by at most one batch);
          duplicates, inexpressible mutants and journal-resumed entries
          are free *)
  wallclock_s : float option;
      (** stop at the first batch boundary past this many seconds *)
  plateau : int;
      (** stop after this many consecutive batches with zero new
          signatures; [0] disables the plateau rule *)
  timeout_s : float option;  (** per-scenario deadline, as in the executor *)
  retries : int;  (** re-runs after a timeout *)
  campaign_seed : int;
  journal_path : string option;
  segment_bytes : int option;
      (** write the journal as a v3 segmented store rotating at this
          byte bound (doc/exec.md); [None] keeps the single-file
          layout unless the path already is a store *)
  resume : bool;
      (** reuse journaled outcomes: the loop replays deterministically,
          so already-executed scenarios are spliced in without booting
          the SUT *)
  quarantine_path : string option;
      (** a hardened campaign's quarantine directory; scenario ids in
          its [flaky.txt] are deferred to the back of the schedule and
          only run once every regular bucket has drained *)
  fuel : int option;
      (** cooperative step budget per execution
          ({!Conferr_harden.Sandbox.tick}); [None] = unlimited *)
  trace : Conferr_obsv.Trace.t option;
      (** span tracer for executed scenarios (doc/obsv.md).  Explore
          records the spawn/run/classify phases only: generate and
          serialize happen inside {!Mutant_cache}, before scheduling.
          [None] (default) records nothing *)
  metrics : Conferr_obsv.Metrics.t option;
      (** metrics registry: per-scenario outcome/latency families plus
          the final search state ([conferr_explore_*] gauges, including
          per-bucket energies); [None] (default) records nothing *)
}

val default_settings : settings
(** [{ jobs = 1; batch = 32; budget = None; wallclock_s = None;
      plateau = 4; timeout_s = None; retries = 0; campaign_seed = 42;
      journal_path = None; segment_bytes = None; resume = false;
      quarantine_path = None;
      fuel = None; trace = None; metrics = None }] *)

type stop_reason =
  | Budget_exhausted
  | Wallclock_exceeded
  | Plateaued of int  (** consecutive novelty-free batches *)
  | Stream_exhausted

type frontier_entry = {
  key : Conferr_exec.Signature.key;
  first_id : string;  (** the scenario that discovered this signature *)
  first_description : string;
  discovered_batch : int;  (** 1-based batch of discovery *)
  hits : int;  (** executed or resumed entries with this signature *)
}

type report = {
  sut_name : string;
  frontier : frontier_entry list;  (** discovery order *)
  batches : int;
  considered : int;  (** scenarios scheduled out of the stream *)
  executed : int;  (** actual SUT boot+test runs *)
  duplicates : int;  (** skipped via the mutant cache *)
  resumed : int;  (** outcomes reused from the journal *)
  not_applicable : int;  (** mutations the format could not express *)
  deferred : int;  (** quarantined (flaky) scenarios pushed to the back *)
  stop : stop_reason;
  profile : Conferr.Profile.t;
      (** executed + resumed entries in scheduling order (duplicates
          carry no entry of their own) *)
  duplicate_of : (string * string) list;
      (** dedup provenance: (skipped scenario, first discoverer) *)
  energies : ((string * string) * float) list;
      (** final (fault class, target file) bucket energies, sorted *)
}

val bucket_of_scenario : Errgen.Scenario.t -> string * string
(** The (fault class, target file) novelty bucket a scenario feeds.
    The target file is recovered from the [... at <file>:<path>]
    convention of generator descriptions; scenarios without one fall
    into the ["-"] file bucket. *)

val run_from :
  ?settings:settings ->
  ?on_event:(Conferr_exec.Progress.event -> unit) ->
  sut:Suts.Sut.t ->
  base:Conftree.Config_set.t ->
  stream:Errgen.Scenario.t Errgen.Gen.t ->
  unit ->
  report

val run :
  ?settings:settings ->
  ?on_event:(Conferr_exec.Progress.event -> unit) ->
  sut:Suts.Sut.t ->
  stream:(Conftree.Config_set.t -> Errgen.Scenario.t Errgen.Gen.t) ->
  unit ->
  (report, Conferr.Engine.config_error) result
(** Parse the SUT's default configuration, build the stream over it, and
    explore. *)

val stop_reason_to_string : stop_reason -> string

val render : report -> string
(** The frontier report: discovery table, dedup/skip counters, stop
    reason, final bucket energies.  Contains no timing, so it is
    byte-identical across [jobs] (the determinism test relies on
    this). *)
