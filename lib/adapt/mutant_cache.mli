(** Content-addressed mutant dedup cache.

    Random error generators frequently synthesize the {e same} faulty
    configuration twice (ten random typos in a three-character value
    collide often), and running the SUT on byte-identical input can only
    rediscover the same outcome.  This cache hashes each scenario's
    serialized configuration set (via [Conferr.Engine.serialize_config])
    and answers "has this exact mutant been executed before?" — the
    campaign loop skips the SUT run for duplicates and records a
    [Duplicate_of] provenance pointing at the first discoverer instead.

    Classification also front-loads the mutate + serialize half of the
    pipeline, so a [Fresh] verdict carries the serialized files and the
    executor only has to boot and test. *)

type t

type verdict =
  | Fresh of { digest : string; files : (string * string) list }
      (** first time this exact mutant is seen; [files] are the
          serialized configuration files, ready to boot *)
  | Duplicate_of of { digest : string; first_id : string }
      (** byte-identical to the mutant first produced by scenario
          [first_id]; skip the SUT run *)
  | Inexpressible of string
      (** the mutation could not be applied or serialized — the same
          message [Engine.run_scenario] would report as
          [Not_applicable] *)

val create : unit -> t

val classify :
  t -> sut:Suts.Sut.t -> base:Conftree.Config_set.t -> Errgen.Scenario.t ->
  verdict
(** Apply and serialize the scenario's mutation, then look the result up
    by content digest.  A [Fresh] verdict registers the digest under the
    scenario's id. *)

val digest_files : (string * string) list -> string
(** Hex digest of a serialized configuration set (order-sensitive, which
    is fine: [serialize_config] emits files in declaration order). *)

val size : t -> int
(** Distinct mutants registered so far. *)

val hits : t -> int
(** Duplicate lookups answered so far. *)
