module Engine = Conferr.Engine
module Outcome = Conferr.Outcome
module Profile = Conferr.Profile
module Scenario = Errgen.Scenario
module Gen = Errgen.Gen
module Executor = Conferr_exec.Executor
module Journal = Conferr_exec.Journal
module Signature = Conferr_exec.Signature
module Progress = Conferr_exec.Progress
module Texttable = Conferr_util.Texttable
module Sandbox = Conferr_harden.Sandbox
module Repro = Conferr_harden.Repro
module Clock = Conferr_obsv.Clock
module Trace = Conferr_obsv.Trace
module Metrics = Conferr_obsv.Metrics

type settings = {
  jobs : int;
  batch : int;
  budget : int option;
  wallclock_s : float option;
  plateau : int;
  timeout_s : float option;
  retries : int;
  campaign_seed : int;
  journal_path : string option;
  segment_bytes : int option;
  resume : bool;
  quarantine_path : string option;
  fuel : int option;
  trace : Trace.t option;
  metrics : Metrics.t option;
}

let default_settings =
  {
    jobs = 1;
    batch = 32;
    budget = None;
    wallclock_s = None;
    plateau = 4;
    timeout_s = None;
    retries = 0;
    campaign_seed = 42;
    journal_path = None;
    segment_bytes = None;
    resume = false;
    quarantine_path = None;
    fuel = None;
    trace = None;
    metrics = None;
  }

type stop_reason =
  | Budget_exhausted
  | Wallclock_exceeded
  | Plateaued of int
  | Stream_exhausted

type frontier_entry = {
  key : Signature.key;
  first_id : string;
  first_description : string;
  discovered_batch : int;
  hits : int;
}

type report = {
  sut_name : string;
  frontier : frontier_entry list;
  batches : int;
  considered : int;
  executed : int;
  duplicates : int;
  resumed : int;
  not_applicable : int;
  deferred : int;
  stop : stop_reason;
  profile : Profile.t;
  duplicate_of : (string * string) list;
  energies : ((string * string) * float) list;
}

(* ------------------------------------------------------------------ *)
(* Novelty buckets                                                     *)
(* ------------------------------------------------------------------ *)

(* Generator descriptions end in "... at <file>:<path>"; the file part
   is the bucket's second axis.  A description without the convention
   lands in the "-" bucket, which only costs scheduling precision. *)
let bucket_of_scenario (s : Scenario.t) =
  let d = s.description in
  let marker = " at " in
  let mlen = String.length marker in
  let dlen = String.length d in
  let rec last_marker i best =
    if i + mlen > dlen then best
    else if String.sub d i mlen = marker then last_marker (i + 1) (Some i)
    else last_marker (i + 1) best
  in
  let file =
    match last_marker 0 None with
    | None -> "-"
    | Some i ->
      let rest = String.sub d (i + mlen) (dlen - i - mlen) in
      (match String.rindex_opt rest ':' with
       | Some j -> String.sub rest 0 j
       | None -> rest)
  in
  (s.class_name, file)

type bucket = { mutable energy : float; queue : Scenario.t Queue.t }

let boost_factor = 1.7
let energy_cap = 8.0
let decay_factor = 0.6
let energy_floor = 0.05

(* ------------------------------------------------------------------ *)
(* Per-scenario execution (boot + test, with the executor's watchdog)   *)
(* ------------------------------------------------------------------ *)

let timeout_crash ~timeout_s =
  Outcome.Crashed
    { cause = Outcome.Timeout timeout_s; phase = Outcome.Harness; backtrace = "" }

(* Sandboxed boot+test: a raising SUT yields [Crashed], never an
   escaping exception; returns the outcome and how many executions it
   took (1 + timeout retries). *)
let boot_with_deadline ?probe ~settings ~emit ~sut ~index (s : Scenario.t) files =
  match settings.timeout_s with
  | None -> (Sandbox.boot_and_test ?fuel:settings.fuel ?probe sut files, 1)
  | Some timeout_s ->
    let rec attempt k =
      match
        Conferr_pool.with_timeout ~timeout_s (fun () ->
            Sandbox.boot_and_test ?fuel:settings.fuel ?probe sut files)
      with
      | Some outcome -> (outcome, k)
      | None ->
        emit (Progress.Timed_out { index; id = s.id; attempt = k });
        if k <= settings.retries then attempt (k + 1)
        else (timeout_crash ~timeout_s, k)
    in
    attempt 1

(* ------------------------------------------------------------------ *)
(* The search loop                                                     *)
(* ------------------------------------------------------------------ *)

(* A scheduled scenario after classification, in scheduling order. *)
type classified =
  | Reuse of (string * string) * Scenario.t * Journal.entry
  | Skip of Scenario.t * string (* duplicate of first_id *)
  | Na of (string * string) * Scenario.t * string
  | Run of (string * string) * Scenario.t * (string * string) list

let run_from ?(settings = default_settings) ?(on_event = Progress.log_event)
    ~sut ~base ~stream () =
  let t0 = Unix.gettimeofday () in
  let emit_lock = Mutex.create () in
  let emit ev =
    Mutex.lock emit_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock emit_lock)
      (fun () -> on_event ev)
  in
  (* journal: load what a previous run already executed, then append *)
  let journaled : (string, Journal.entry) Hashtbl.t = Hashtbl.create 64 in
  (match settings.journal_path with
   | Some path when settings.resume ->
     List.iter
       (fun (e : Journal.entry) -> Hashtbl.replace journaled e.scenario_id e)
       (Journal.load path)
   | _ -> ());
  let writer =
    Option.map
      (fun path ->
         Journal.open_append ~fresh:(not settings.resume)
           ?segment_bytes:settings.segment_bytes path)
      settings.journal_path
  in
  let cache = Mutant_cache.create () in
  let buckets : (string * string, bucket) Hashtbl.t = Hashtbl.create 16 in
  let bucket_of key =
    match Hashtbl.find_opt buckets key with
    | Some b -> b
    | None ->
      let b = { energy = 1.0; queue = Queue.create () } in
      Hashtbl.add buckets key b;
      b
  in
  (* scenarios quarantined as flaky by a previous hardened campaign are
     deferred: they only run once every regular bucket has drained *)
  let quarantined =
    match settings.quarantine_path with
    | None -> []
    | Some dir -> Repro.load_flaky dir
  in
  let deferred_q : Scenario.t Queue.t = Queue.create () in
  let deferred = ref 0 in
  let queued = ref 0 in
  let stream_done = ref false in
  let pull_into_buckets target =
    while (not !stream_done) && !queued < target do
      match Gen.next stream with
      | None -> stream_done := true
      | Some s ->
        if List.mem s.Scenario.id quarantined then begin
          Queue.add s deferred_q;
          incr deferred
        end
        else begin
          Queue.add s (bucket_of (bucket_of_scenario s)).queue;
          incr queued
        end
    done
  in
  (* Weighted selection: repeatedly take from the non-empty bucket with
     the highest effective energy (energy / (1 + already taken this
     batch)), ties broken by bucket key — a deterministic weighted
     round-robin. *)
  let select_batch () =
    pull_into_buckets (2 * settings.batch);
    let taken : (string * string, int) Hashtbl.t = Hashtbl.create 8 in
    let taken_of key = Option.value ~default:0 (Hashtbl.find_opt taken key) in
    let rec pick acc k =
      if k = 0 then List.rev acc
      else
        let candidates =
          Hashtbl.fold
            (fun key b acc ->
              if Queue.is_empty b.queue then acc else (key, b) :: acc)
            buckets []
          |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
        in
        match candidates with
        | [] ->
          if Queue.is_empty deferred_q then List.rev acc
          else begin
            (* buckets are dry: drain the quarantined tail *)
            let s = Queue.pop deferred_q in
            pick ((bucket_of_scenario s, s) :: acc) (k - 1)
          end
        | first :: rest ->
          let eff (key, b) = b.energy /. float_of_int (1 + taken_of key) in
          let key, b =
            List.fold_left
              (fun best c -> if eff c > eff best then c else best)
              first rest
          in
          let s = Queue.pop b.queue in
          decr queued;
          Hashtbl.replace taken key (1 + taken_of key);
          pick ((key, s) :: acc) (k - 1)
    in
    pick [] settings.batch
  in
  (* counters and discovery state *)
  let considered = ref 0 in
  let executed = ref 0 in
  let duplicates = ref 0 in
  let resumed = ref 0 in
  let not_applicable = ref 0 in
  let batch_no = ref 0 in
  let plateau_run = ref 0 in
  let stop = ref None in
  let seen : (Signature.key, frontier_entry ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let discovery_rev = ref [] in
  let profile_rev = ref [] in
  let journal_entries_rev = ref [] in
  let duplicate_of_rev = ref [] in
  (* folds one finished entry into profile + frontier; returns whether
     its signature was previously unseen *)
  let note_entry (s : Scenario.t) (je : Journal.entry) =
    journal_entries_rev := je :: !journal_entries_rev;
    let pe =
      {
        Profile.scenario_id = je.scenario_id;
        class_name = je.class_name;
        description = je.description;
        outcome = je.outcome;
      }
    in
    profile_rev := pe :: !profile_rev;
    let key = Signature.of_entry pe in
    match Hashtbl.find_opt seen key with
    | Some fr ->
      fr := { !fr with hits = (!fr).hits + 1 };
      false
    | None ->
      let fr =
        ref
          {
            key;
            first_id = s.id;
            first_description = s.description;
            discovered_batch = !batch_no;
            hits = 1;
          }
      in
      Hashtbl.add seen key fr;
      discovery_rev := fr :: !discovery_rev;
      true
  in
  let journal_entry ?(attempts = 1) ?(phase_ms = []) (s : Scenario.t) outcome elapsed_ms =
    {
      Journal.scenario_id = s.id;
      class_name = s.class_name;
      description = s.description;
      seed = Executor.scenario_seed ~campaign_seed:settings.campaign_seed s.id;
      outcome;
      elapsed_ms;
      attempts;
      votes = [];
      phase_ms;
    }
  in
  (* Observability is inert unless asked for (doc/obsv.md).  Explore
     traces the spawn/run/classify phases only: generate and serialize
     happen inside the mutant cache, before scheduling. *)
  let observing = settings.trace <> None || settings.metrics <> None in
  (match settings.metrics with
   | None -> ()
   | Some reg ->
     Metrics.declare reg Metrics.Counter "conferr_scenario_outcomes_total"
       ~help:"Finished scenarios, by (SUT, fault class, outcome label)";
     Metrics.declare reg Metrics.Histogram "conferr_scenario_ms"
       ~help:"End-to-end wall milliseconds per scenario";
     Metrics.declare reg Metrics.Histogram "conferr_phase_ms"
       ~help:"Wall milliseconds per pipeline phase (doc/obsv.md)");
  let observe_entry (s : Scenario.t) clock (je : Journal.entry) =
    (match (settings.trace, clock) with
     | Some tr, Some c -> Trace.record tr ~id:s.id ~class_name:s.class_name c
     | _ -> ());
    match settings.metrics with
    | None -> ()
    | Some reg ->
      (* label lists in canonical key order so the registry's sortedness
         fast path never re-allocates *)
      let sut_name = sut.Suts.Sut.sut_name in
      Metrics.inc reg "conferr_scenario_outcomes_total"
        ~labels:
          [ ("class", s.class_name); ("outcome", Outcome.label je.outcome);
            ("sut", sut_name) ];
      Metrics.observe reg "conferr_scenario_ms"
        ~labels:[ ("class", s.class_name); ("sut", sut_name) ]
        je.elapsed_ms;
      List.iter
        (fun (phase, ms) ->
          Metrics.observe reg "conferr_phase_ms"
            ~labels:[ ("phase", phase); ("sut", sut_name) ]
            ms)
        je.phase_ms
  in
  let process_batch picked =
    (* 1. classify sequentially: journal hit / duplicate / n-a / fresh *)
    let classified =
      List.map
        (fun (bkey, (s : Scenario.t)) ->
          incr considered;
          (* classify through the cache even for journaled scenarios, so
             a resumed run rebuilds the same digest table and keeps
             deduping exactly like the original run did *)
          match Mutant_cache.classify cache ~sut ~base s with
          | Mutant_cache.Duplicate_of { first_id; _ } ->
            incr duplicates;
            duplicate_of_rev := (s.id, first_id) :: !duplicate_of_rev;
            Skip (s, first_id)
          | Mutant_cache.Inexpressible msg ->
            (match Hashtbl.find_opt journaled s.id with
             | Some je ->
               incr resumed;
               Reuse (bkey, s, je)
             | None ->
               incr not_applicable;
               Na (bkey, s, msg))
          | Mutant_cache.Fresh { files; _ } ->
            (match Hashtbl.find_opt journaled s.id with
             | Some je ->
               incr resumed;
               Reuse (bkey, s, je)
             | None -> Run (bkey, s, files)))
        picked
    in
    (* 2. execute the fresh mutants on the pool *)
    let runs =
      classified
      |> List.filter_map (function Run (_, s, files) -> Some (s, files) | _ -> None)
      |> Array.of_list
    in
    let results =
      Conferr_pool.map ~jobs:settings.jobs
        (fun index ((s : Scenario.t), files) ->
          emit (Progress.Started { index; id = s.id });
          let t_start = Unix.gettimeofday () in
          let clock = if observing then Some (Clock.create ()) else None in
          let probe = Option.map Clock.probe clock in
          let outcome, attempts =
            boot_with_deadline ?probe ~settings ~emit ~sut ~index s files
          in
          let elapsed_ms = (Unix.gettimeofday () -. t_start) *. 1000. in
          let phase_ms =
            match clock with Some c -> Clock.phase_ms c | None -> []
          in
          let je = journal_entry ~attempts ~phase_ms s outcome elapsed_ms in
          observe_entry s clock je;
          Option.iter (fun w -> Journal.append w je) writer;
          emit
            (Progress.Finished
               { index; id = s.id; label = Outcome.label outcome; elapsed_ms });
          (s.id, je))
        runs
    in
    let finished = Hashtbl.create (Array.length runs) in
    Array.iter (fun (id, je) -> Hashtbl.replace finished id je) results;
    executed := !executed + Array.length runs;
    (* 3. fold outcomes in scheduling order; note productive buckets *)
    let productive : (string * string, unit) Hashtbl.t = Hashtbl.create 8 in
    let new_sigs = ref 0 in
    List.iter
      (fun c ->
        let folded =
          match c with
          | Reuse (bkey, s, je) -> Some (bkey, s, je)
          | Na (bkey, s, msg) ->
            let je = journal_entry s (Outcome.Not_applicable msg) 0.0 in
            Option.iter (fun w -> Journal.append w je) writer;
            Some (bkey, s, je)
          | Run (bkey, s, _) ->
            (match Hashtbl.find_opt finished s.id with
             | Some je -> Some (bkey, s, je)
             | None -> None)
          | Skip _ -> None
        in
        match folded with
        | None -> ()
        | Some (bkey, s, je) ->
          if note_entry s je then begin
            incr new_sigs;
            Hashtbl.replace productive bkey ()
          end)
      classified;
    (* 4. energy update for every bucket scheduled this batch *)
    List.sort_uniq compare (List.map fst picked)
    |> List.iter (fun bkey ->
           let b = bucket_of bkey in
           if Hashtbl.mem productive bkey then
             b.energy <- Float.min (b.energy *. boost_factor) energy_cap
           else b.energy <- Float.max (b.energy *. decay_factor) energy_floor);
    !new_sigs
  in
  let rec loop () =
    (match settings.budget with
     | Some b when !executed >= b -> stop := Some Budget_exhausted
     | _ -> ());
    (match settings.wallclock_s with
     | Some w when Unix.gettimeofday () -. t0 >= w ->
       stop := Some Wallclock_exceeded
     | _ -> ());
    match !stop with
    | Some _ -> ()
    | None ->
      let picked = select_batch () in
      if picked = [] then stop := Some Stream_exhausted
      else begin
        incr batch_no;
        let new_sigs = process_batch picked in
        if new_sigs = 0 then incr plateau_run else plateau_run := 0;
        if settings.plateau > 0 && !plateau_run >= settings.plateau then
          stop := Some (Plateaued !plateau_run);
        loop ()
      end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Journal.close writer)
    loop;
  let entries = List.rev !journal_entries_rev in
  Option.iter
    (fun path ->
       Journal.checkpoint ?segment_bytes:settings.segment_bytes path entries)
    settings.journal_path;
  (match settings.metrics with
   | None -> ()
   | Some reg ->
     (* final search state as gauges: exact values, resume-safe *)
     Metrics.set reg "conferr_explore_considered" (float_of_int !considered);
     Metrics.set reg "conferr_explore_executed" (float_of_int !executed);
     Metrics.set reg "conferr_explore_duplicates" (float_of_int !duplicates);
     Metrics.set reg "conferr_explore_not_applicable"
       (float_of_int !not_applicable);
     Metrics.set reg "conferr_explore_resumed" (float_of_int !resumed);
     Metrics.set reg "conferr_explore_deferred" (float_of_int !deferred);
     Metrics.set reg "conferr_explore_batches" (float_of_int !batch_no);
     Metrics.set reg "conferr_explore_signatures"
       (float_of_int (Hashtbl.length seen));
     Hashtbl.iter
       (fun (class_name, file) (b : bucket) ->
         Metrics.set reg "conferr_explore_energy"
           ~labels:[ ("class", class_name); ("file", file) ]
           b.energy)
       buckets);
  {
    sut_name = sut.Suts.Sut.sut_name;
    frontier = List.rev_map (fun fr -> !fr) !discovery_rev;
    batches = !batch_no;
    considered = !considered;
    executed = !executed;
    duplicates = !duplicates;
    resumed = !resumed;
    not_applicable = !not_applicable;
    deferred = !deferred;
    stop = Option.value ~default:Stream_exhausted !stop;
    profile = Profile.make ~sut_name:sut.Suts.Sut.sut_name (List.rev !profile_rev);
    duplicate_of = List.rev !duplicate_of_rev;
    energies =
      Hashtbl.fold (fun key b acc -> (key, b.energy) :: acc) buckets []
      |> List.sort compare;
  }

let run ?settings ?on_event ~sut ~stream () =
  match Engine.parse_default_config sut with
  | Error message ->
    Error { Engine.sut_name = sut.Suts.Sut.sut_name; message }
  | Ok base ->
    Ok (run_from ?settings ?on_event ~sut ~base ~stream:(stream base) ())

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let stop_reason_to_string = function
  | Budget_exhausted -> "scenario budget exhausted"
  | Wallclock_exceeded -> "wall-clock budget exceeded"
  | Plateaued n -> Printf.sprintf "plateau (%d batches without a new signature)" n
  | Stream_exhausted -> "scenario stream exhausted"

let render r =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "exploration of %s: %d distinct signatures in %d batch%s (stopped: %s)\n"
    r.sut_name (List.length r.frontier) r.batches
    (if r.batches = 1 then "" else "es")
    (stop_reason_to_string r.stop);
  Printf.bprintf buf
    "  considered %d | executed %d | duplicates skipped %d | n/a %d | resumed %d\n"
    r.considered r.executed r.duplicates r.not_applicable r.resumed;
  if r.deferred > 0 then
    Printf.bprintf buf "  deferred %d quarantined (flaky) scenario%s\n"
      r.deferred
      (if r.deferred = 1 then "" else "s");
  Buffer.add_char buf '\n';
  Buffer.add_string buf "Signature frontier (first discoverer per cluster):\n";
  let row (f : frontier_entry) =
    [
      string_of_int f.discovered_batch;
      string_of_int f.hits;
      f.key.Signature.class_name;
      f.key.Signature.label;
      (if f.key.Signature.message = "" then "-" else f.key.Signature.message);
      f.first_id;
    ]
  in
  Buffer.add_string buf
    (Texttable.render
       ~aligns:[ Texttable.Right; Right; Left; Left; Left; Left ]
       ~header:[ "batch"; "hits"; "fault class"; "outcome"; "signature"; "first" ]
       (List.map row r.frontier));
  Buffer.add_string buf "\nBucket energies (fault class @ file):\n";
  List.iter
    (fun ((class_name, file), energy) ->
      Printf.bprintf buf "  %-28s @ %-20s %.2f\n" class_name file energy)
    r.energies;
  Buffer.contents buf
